/**
 * @file
 * Full-system assembly: event queue, stacked DRAM, off-chip memory,
 * DRAM cache organization + controller, SRAM hierarchy and trace
 * cores, wired per a MachineConfig. One System is one timing run.
 */

#ifndef BMC_SIM_SYSTEM_HH
#define BMC_SIM_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "common/chrome_trace.hh"
#include "common/event_queue.hh"
#include "common/profiler.hh"
#include "common/stats.hh"
#include "dram/dram_system.hh"
#include "dramcache/org.hh"
#include "sim/dramcache_controller.hh"
#include "sim/energy.hh"
#include "sim/main_memory.hh"
#include "sim/mem_hierarchy.hh"
#include "sim/metrics.hh"
#include "sim/schemes.hh"
#include "sim/trace_core.hh"
#include "trace/workload.hh"

namespace bmc::check
{
class ProtocolChecker;
class ShadowChecker;
} // namespace bmc::check

namespace bmc::sim
{

class EpochSampler;

// RunStats (the scalar results of one timing run) lives in
// sim/metrics.hh together with its JSON serialization.

/**
 * Observability switches for one run. Everything defaults to off;
 * an enabled feature never perturbs simulated timing (hooks are
 * read-only), so results stay identical either way.
 */
struct ObsConfig
{
    /** Epoch time-series JSONL path; empty = disabled. */
    std::string epochPath;
    Tick epochTicks = 100'000;
    /** Chrome trace-event JSON path; empty = disabled. */
    std::string tracePath;
    /** Trace every K-th LLSC demand miss. */
    std::uint32_t traceSample = 64;

    bool any() const
    {
        return !epochPath.empty() || !tracePath.empty();
    }
};

/**
 * Runtime-verification switches (src/check). Off by default; the
 * checkers are pure observers -- arming them never changes simulated
 * timing or statistics, it only adds cross-checking work. A checker
 * violation raises bmc_fatal, so under ScopedThrowErrors it
 * surfaces as a SimError the caller can isolate.
 */
struct CheckConfig
{
    /** DDR protocol checker on both DRAM systems (stacked + mem). */
    bool protocol = false;
    /** Shadow-consistency checker on the DRAM cache controller. */
    bool shadow = false;
    /** Accesses between O(sets) structural audits. */
    std::uint64_t auditEvery = 1024;

    bool any() const { return protocol || shadow; }
};

/**
 * Parse a --check flag value: a comma-separated subset of
 * {protocol, shadow, all}, or empty / "off" for everything off.
 * bmc_fatal on an unknown token.
 */
CheckConfig parseCheckList(const std::string &arg);

/**
 * Canonical warm-identity blob for a (config, program list,
 * generator-id list) triple without constructing a System; equal
 * blobs mean a shared warm checkpoint is valid. An empty
 * @p gen_core_ids means the default 0..n-1 assignment.
 */
std::string warmIdentityBlob(const MachineConfig &cfg,
                             const std::vector<std::string> &programs,
                             const std::vector<CoreId> &gen_core_ids);

/** One simulated machine executing one program list. */
class System
{
  public:
    /**
     * @param cfg          machine description
     * @param programs     benchmark names, one per core (must match
     *                     cfg.cores)
     * @param gen_core_ids seed/base identity for each program's
     *                     generator. Defaults to 0..n-1; the ANTT
     *                     runner passes the multiprogram core index
     *                     so a standalone run replays the identical
     *                     stream.
     */
    System(const MachineConfig &cfg,
           const std::vector<std::string> &programs,
           std::vector<CoreId> gen_core_ids = {});
    ~System();

    /** Run until every core retires its budget. */
    RunStats run(Tick max_ticks = maxTick);

    dramcache::DramCacheOrg &org() { return *org_; }
    DramCacheController &controller() { return *dcc_; }
    EventQueue &eventQueue() { return eq_; }
    /** Core @p i (trace position, record accounting). */
    const TraceCore &core(unsigned i) const { return *cores_.at(i); }

    /** Render every statistic in the system ("group.stat = value"
     *  lines), for post-run inspection or regression diffing. */
    std::string dumpStats() const { return root_.dump(); }

    /** Full registered-stat hierarchy as one JSON object. */
    std::string statsHierarchyJson(bool pretty = false) const
    {
        return root_.toJson(pretty);
    }

    /**
     * Turn on epoch sampling and/or lifecycle tracing per @p obs.
     * Call before run(); output files open immediately (bmc_fatal
     * on failure) and are finalized when the System is destroyed.
     */
    void enableObservability(const ObsConfig &obs);

    /**
     * Arm runtime invariant checkers per @p check. Call before
     * run(). Protocol checkers attach to every channel of both DRAM
     * systems; the shadow checker attaches to the controller's
     * check-observer slot and runs a final audit when the event loop
     * drains.
     */
    void enableChecks(const CheckConfig &check);

    // ------------------------------ checkpointed warm-up ----------
    // Construct the System with cfg.warmupInstrPerCore == 0 when
    // using these: the functional fast-forward replaces the in-run
    // warm-up, and the whole timing run is the measured region.

    /**
     * Functional fast-forward: drive >= @p instrs_per_core
     * instructions per core (whole trace records, round-robin)
     * through the L1/LLSC/organization functional models only --
     * no events, no MSHRs, no DRAM timing -- then reset all
     * statistics. Must be called before run().
     */
    void warmupFunctional(std::uint64_t instrs_per_core);

    /**
     * Canonical blob of every configuration field that affects warm
     * functional state (scheme, seed, programs, geometries,
     * predictor knobs). Two Systems with equal identity blobs can
     * share a warm checkpoint; purely-timing knobs (instruction
     * budget, MLP, channel counts of main memory, command-level
     * DRAM) are excluded by design.
     */
    std::string identityBlob() const;

    /** Serialize the warm functional state (trace positions, caches,
     *  organization, bank rows) into a blob. */
    std::string serializeWarmState() const;

    /**
     * Restore a blob from serializeWarmState(): fast-forwards the
     * trace generators and overwrites cache/organization/bank state,
     * then resets all statistics. Must be called before run() on a
     * freshly built System with a matching identity.
     */
    void restoreWarmState(const std::string &state);

    /** Save identity + warm state to @p path (checkpoint.hh). */
    void saveCheckpoint(const std::string &path) const;

    /** Load @p path, verify identity, restore warm state. */
    void loadCheckpoint(const std::string &path);

    /** Whether the configured organization can checkpoint. */
    bool supportsCheckpoint() const
    {
        return org_->supportsCheckpoint();
    }

    /**
     * Self-profiling snapshot: phase wall timings (functional
     * warm-up / event loop / stat collection) plus kernel gauges
     * aggregated from the event queue, the LLSC MSHR file and every
     * DRAM channel of both systems. Pure observation -- call any
     * time; exporting it never perturbs simulated state. Wall-clock
     * fields differ run to run, which is why profile export is
     * opt-in everywhere (`bmcsim --profile`, `bmcsweep --profile`).
     */
    ProfileReport profile() const;

  private:
    RunStats collect() const;

    /** Seed the shadow checker with the org's resident lines after a
     *  warm start (either attach order: warm-then-check works too). */
    void seedShadowFromOrg();

    MachineConfig cfg_;
    std::vector<std::string> programs_;
    std::vector<CoreId> genCoreIds_;
    EventQueue eq_;
    stats::StatGroup root_;
    std::unique_ptr<dram::DramSystem> stacked_;
    std::unique_ptr<MainMemory> memory_;
    std::unique_ptr<dramcache::DramCacheOrg> org_;
    std::unique_ptr<DramCacheController> dcc_;
    std::unique_ptr<MemHierarchy> hier_;
    std::vector<std::unique_ptr<TraceCore>> cores_;
    std::unique_ptr<ChromeTracer> tracer_;
    std::unique_ptr<EpochSampler> epochSampler_;
    std::unique_ptr<check::ProtocolChecker> stackedProtoCheck_;
    std::unique_ptr<check::ProtocolChecker> memProtoCheck_;
    std::unique_ptr<check::ShadowChecker> shadowCheck_;
    Profiler profiler_;
    unsigned coresDone_ = 0;
    unsigned coresWarm_ = 0;
    /** Warm state came from warmupFunctional()/restoreWarmState(). */
    bool warmStarted_ = false;
};

/** ANTT study output (Fig 7 / Fig 8a). */
struct AnttResult
{
    double antt = 0.0;
    RunStats multiprogram;
    std::vector<Tick> standaloneCycles;
    /** Full Eyerman-Eeckhout metric family (STP, HMS, fairness). */
    MultiprogramMetrics metrics;
    /** Kernel events executed across the multiprogram run and every
     *  standalone run (sweep timing instrumentation). */
    std::uint64_t eventsExecuted = 0;
};

/**
 * Run the workload multiprogrammed and each program standalone on
 * the same machine, and compute
 *   ANTT = (1/n) * sum_i C_i^MP / C_i^SP.
 */
AnttResult runAntt(const MachineConfig &cfg,
                   const trace::WorkloadSpec &workload);

} // namespace bmc::sim

#endif // BMC_SIM_SYSTEM_HH
