/**
 * @file
 * Scheme registry and machine configuration presets (Table IV).
 *
 * A MachineConfig fully describes one simulated machine: core count,
 * cache hierarchy, DRAM cache geometry, off-chip memory and the DRAM
 * cache organization under test. Presets follow Table IV; the
 * default ("fast") presets shrink capacity/footprint/instruction
 * counts together, preserving the paper's pressure ratios, while
 * fullScale() restores the published sizes.
 */

#ifndef BMC_SIM_SCHEMES_HH
#define BMC_SIM_SCHEMES_HH

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cache/prefetcher.hh"
#include "common/types.hh"
#include "dramcache/org.hh"
#include "dramcache/registry.hh"

namespace bmc::sim
{

/**
 * A validated scheme identifier: a thin value wrapper over the
 * registered name (dramcache::SchemeRegistry is the source of
 * truth). The named constants below cover the paper's fixed menu and
 * are constant-initialized, so they are safe to use from other
 * translation units' static initializers (test instantiations).
 * Dynamic strings enter through schemeFromName(), which validates
 * against the registry and interns the name.
 */
struct Scheme
{
    const char *name = "bimodal";

    constexpr Scheme() = default;
    constexpr explicit Scheme(const char *interned) : name(interned) {}

    bool operator==(const Scheme &o) const
    {
        return std::string_view(name) == std::string_view(o.name);
    }
    bool operator!=(const Scheme &o) const { return !(*this == o); }

    static const Scheme Alloy;          //!< direct-mapped TAD + MAP-I
    static const Scheme LohHill;        //!< 29-way tags-in-DRAM
    static const Scheme ATCache;        //!< tags-in-DRAM + tag cache
    static const Scheme Footprint;      //!< 2 KB blocks, footprint
    static const Scheme Fixed512;       //!< 512 B blocks, DRAM tags
    static const Scheme Fixed512Sram;   //!< 512 B blocks, SRAM tags
    static const Scheme WayLocatorOnly; //!< Fixed512 + way locator
    static const Scheme BiModalOnly;    //!< bi-modality, no locator
    static const Scheme BiModal;        //!< the full proposal
    static const Scheme Banshee;        //!< page-granular, TLB-tracked
    static const Scheme BiModalNvm;     //!< bimodal over 3DXPoint tier
};

inline const Scheme Scheme::Alloy{"alloy"};
inline const Scheme Scheme::LohHill{"loh_hill"};
inline const Scheme Scheme::ATCache{"atcache"};
inline const Scheme Scheme::Footprint{"footprint"};
inline const Scheme Scheme::Fixed512{"fixed512"};
inline const Scheme Scheme::Fixed512Sram{"fixed512_sram"};
inline const Scheme Scheme::WayLocatorOnly{"wayloc_only"};
inline const Scheme Scheme::BiModalOnly{"bimodal_only"};
inline const Scheme Scheme::BiModal{"bimodal"};
inline const Scheme Scheme::Banshee{"banshee"};
inline const Scheme Scheme::BiModalNvm{"bimodal_nvm"};

/** The registered name (stable CLI / JSONL identifier). */
inline const char *schemeName(const Scheme &scheme)
{
    return scheme.name;
}

/**
 * Validate @p name against the registry and return the interned
 * scheme id. Unknown names are fatal, with the full catalog and a
 * nearest-match suggestion in the message.
 */
Scheme schemeFromName(const std::string &name);

/** Every registered scheme, in registry (sorted-name) order. */
std::vector<Scheme> allSchemes();

/** Registry metadata for @p scheme (fatal when unregistered). */
const dramcache::SchemeInfo &schemeInfo(const Scheme &scheme);

/** A complete simulated-machine description. */
struct MachineConfig
{
    unsigned cores = 4;

    // DRAM cache geometry
    std::uint64_t dramCacheBytes = 8 * kMiB;
    /** Capacity used to size workload footprints; 0 means "use
     *  dramCacheBytes". Pin this during capacity sweeps so the
     *  workload stays constant while the cache grows. */
    std::uint64_t footprintRefBytes = 0;
    unsigned stackedChannels = 2;
    unsigned stackedBanksPerChannel = 8;

    // Bi-Modal knobs
    std::uint32_t setBytes = 2048;
    std::uint32_t bigBlockBytes = 512;
    unsigned locatorIndexBits = 14;   //!< K
    unsigned addressBits = 40;
    unsigned predictorIndexBits = 16; //!< P
    unsigned predictorThreshold = 5;  //!< T
    unsigned predictorSampleEvery = 25; //!< tracker set-sampling
    std::uint64_t adaptEpoch = 1 << 16;
    double adaptWeight = 0.75;        //!< W

    // SRAM hierarchy (Table IV)
    std::uint64_t l1Bytes = 32 * kKiB;
    unsigned l1Assoc = 2;
    unsigned l1Latency = 2;
    std::uint64_t llscBytes = 1 * kMiB;
    unsigned llscAssoc = 8;
    unsigned llscLatency = 7;
    unsigned llscMshrs = 128;

    // Off-chip memory
    unsigned memChannels = 1;
    unsigned memBanksPerChannel = 16;

    /** Use the command-granularity DRAM model for both the stacked
     *  dies and main memory (slower, higher fidelity). */
    bool commandLevelDram = false;

    // Cores
    double cpi = 0.5;
    unsigned mlp = 8;
    std::uint64_t instrPerCore = 2'000'000;
    /** Fast-forward budget before measurement (stats reset and
     *  per-core cycle counting start once every core is warm). */
    std::uint64_t warmupInstrPerCore = 1'000'000;

    // Prefetch study (Table VI)
    cache::PrefetchPolicy prefetchPolicy = cache::PrefetchPolicy::Off;
    unsigned prefetchDegree = 0;

    Scheme scheme = Scheme::BiModal;
    std::uint64_t seed = 1;

    /**
     * Table IV preset for 4, 8 or 16 cores at reduced (fast) scale:
     * 8/16/32 MB DRAM caches with everything else proportional.
     */
    static MachineConfig preset(unsigned num_cores);

    /** The paper's published scale: 128/256/512 MB DRAM caches. */
    static MachineConfig fullScale(unsigned num_cores);
};

/** Instantiate the organization selected by @p cfg.scheme. */
std::unique_ptr<dramcache::DramCacheOrg>
buildOrg(const MachineConfig &cfg, stats::StatGroup &parent);

} // namespace bmc::sim

#endif // BMC_SIM_SCHEMES_HH
