#include "sim/mem_hierarchy.hh"

#include "common/bitops.hh"
#include "common/chrome_trace.hh"
#include "common/logging.hh"

namespace bmc::sim
{

MemHierarchy::MemHierarchy(EventQueue &eq, const Params &params,
                           DramCacheController &dcc,
                           stats::StatGroup &parent)
    : eq_(eq), p_(params), dcc_(dcc), sg_("hier", &parent),
      mshrs_(params.llscMshrs, sg_),
      llscWritebacks_(sg_, "llsc_writebacks",
                      "dirty LLSC victims pushed to the DRAM cache"),
      mshrBlocked_(sg_, "mshr_blocked",
                   "accesses rejected because the MSHR file was full")
{
    for (unsigned c = 0; c < params.cores; ++c) {
        auto l1p = params.l1;
        l1p.name = "l1_" + std::to_string(c);
        l1p.seed += c;
        l1_.push_back(std::make_unique<cache::SramCache>(l1p, sg_));
    }
    auto l2p = params.llsc;
    l2p.name = "llsc";
    llsc_ = std::make_unique<cache::SramCache>(l2p, sg_);

    if (params.prefetchDegree > 0) {
        prefetcher_ = std::make_unique<cache::NextNLinePrefetcher>(
            params.prefetchDegree, params.llsc.blockBytes, sg_);
    }
}

void
MemHierarchy::setTracer(ChromeTracer *tracer)
{
    tracer_ = tracer;
    if (tracer) {
        mshrs_.setTraceHook([this](const char *what, Addr block,
                                   std::uint32_t tid) {
            // Alloc/merge hooks fire synchronously inside access()
            // and complete fires from the completion event, so
            // eq_.now() is the right timestamp for all three.
            tracer_->instantEvent(
                what, "mshr", 1, tid, eq_.now(),
                strfmt("{\"block\": \"0x%llx\"}",
                       static_cast<unsigned long long>(block)));
        });
    } else {
        mshrs_.setTraceHook(nullptr);
    }
}

void
MemHierarchy::writebackToDramCache(CoreId core, Addr addr)
{
    ++llscWritebacks_;
    dcc_.access(addr, true, false, core, nullptr);
}

void
MemHierarchy::firePrefetches(CoreId core, Addr miss_addr)
{
    if (!prefetcher_)
        return;
    for (const Addr pf : prefetcher_->onMiss(miss_addr, *llsc_)) {
        // Allocate in the LLSC (write-allocate on arrival is
        // approximated at issue time) and send the request through
        // the DRAM cache marked as a prefetch.
        const auto out = llsc_->access(pf, false);
        if (out.writeback)
            writebackToDramCache(core, out.victimAddr);
        dcc_.access(pf, false, true, core, nullptr);
    }
}

MemHierarchy::Outcome
MemHierarchy::access(CoreId core, Addr addr, bool is_write,
                     Callback miss_cb)
{
    bmc_assert(core < l1_.size(), "core id out of range");

    // Back-pressure before any functional update so that a blocked
    // access can be retried verbatim.
    if (mshrs_.full()) {
        ++mshrBlocked_;
        return {Outcome::Kind::Blocked, 0};
    }

    cache::SramCache &l1 = *l1_[core];
    const auto o1 = l1.access(addr, is_write);
    if (o1.writeback) {
        // L1 dirty victim drains into the LLSC (write-allocate, no
        // fetch needed: the full line is being written).
        const auto wb = llsc_->access(o1.victimAddr, true);
        if (wb.writeback)
            writebackToDramCache(core, wb.victimAddr);
    }
    if (o1.hit)
        return {Outcome::Kind::Hit, l1.hitLatency()};

    const auto o2 = llsc_->access(addr, is_write);
    if (o2.writeback)
        writebackToDramCache(core, o2.victimAddr);
    if (o2.hit) {
        return {Outcome::Kind::Hit,
                l1.hitLatency() + llsc_->hitLatency()};
    }

    // Demand LLSC miss -> DRAM cache. Sampled lifecycle tracing
    // starts here: this is the "core issue" milestone.
    const std::uint32_t tid =
        tracer_ ? tracer_->maybeStartRequest() : 0;
    if (tid) {
        tracer_->instantEvent(
            "core_issue", "core", 1, tid, eq_.now(),
            strfmt("{\"core\": %u, \"addr\": \"0x%llx\", "
                   "\"write\": %s}",
                   static_cast<unsigned>(core),
                   static_cast<unsigned long long>(addr),
                   is_write ? "true" : "false"));
    }
    const Addr block = roundDown(addr, llsc_->blockBytes());
    const bool primary =
        mshrs_.allocate(block, std::move(miss_cb), tid);
    firePrefetches(core, addr);
    if (primary) {
        dcc_.access(addr, is_write, false, core,
                    [this, block](Tick done) {
                        mshrs_.complete(block, done);
                    },
                    tid);
    }
    return {Outcome::Kind::Miss, 0};
}

void
MemHierarchy::warmAccess(CoreId core, Addr addr, bool is_write,
                         dramcache::DramCacheOrg &org)
{
    bmc_assert(core < l1_.size(), "core id out of range");

    // Same functional update chain as access(), minus MSHRs,
    // prefetch, tracing and timing: L1 -> LLSC -> organization, with
    // dirty victims propagating downward as writes.
    cache::SramCache &l1 = *l1_[core];
    const auto o1 = l1.access(addr, is_write);
    if (o1.writeback) {
        const auto wb = llsc_->access(o1.victimAddr, true);
        if (wb.writeback)
            org.access(wb.victimAddr, true);
    }
    if (o1.hit)
        return;

    const auto o2 = llsc_->access(addr, is_write);
    if (o2.writeback)
        org.access(o2.victimAddr, true);
    if (o2.hit)
        return;

    org.access(addr, is_write);
}

void
MemHierarchy::serializeState(BinWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(l1_.size()));
    for (const auto &l1 : l1_)
        l1->serializeState(w);
    llsc_->serializeState(w);
}

void
MemHierarchy::deserializeState(BinReader &r)
{
    const std::uint32_t cores = r.u32();
    if (cores != l1_.size()) {
        bmc_fatal("checkpoint hierarchy has %u cores, this machine "
                  "has %zu",
                  cores, l1_.size());
    }
    for (auto &l1 : l1_)
        l1->deserializeState(r);
    llsc_->deserializeState(r);
}

} // namespace bmc::sim
