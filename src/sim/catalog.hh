/**
 * @file
 * Indexed results catalog: a checksummed sidecar index over a sweep
 * results JSONL.
 *
 * A campaign's JSONL stays the source of truth (append-safe, plain
 * text, bit-identical across -jN); the catalog adds a typed column
 * index beside it ("<results>.jsonl.idx") so filtered and aggregated
 * reads never scan the JSONL: each row's byte offset and length plus
 * a compact set of typed columns (label/workload/scheme strings,
 * run/seed, variant-axis params, curated metrics, opt-in profiler
 * gauges) are serialized with common/binio.hh behind the same
 * magic/version/endian/FNV-1a framing as checkpoint files.
 *
 * Durability contract (pinned by tests/test_catalog.cc):
 *  - missing index            -> rebuilt by scanning the JSONL;
 *  - JSONL size != the size the index covers (truncation, append,
 *    in-place growth)         -> rebuilt, dropping any incomplete
 *    trailing line;
 *  - corrupt index (checksum, magic, endianness) -> bmc_fatal with a
 *    rebuild hint (`bmcquery --rebuild` forces one);
 *  - an *older index version* -> silently rebuilt (format upgrades
 *    must not strand old campaigns);
 *  - corruption inside non-indexed JSONL bytes is intentionally
 *    undetected: queries over indexed columns answer from the index
 *    alone, and only a lazy fetch of a non-indexed column re-reads
 *    the row's bytes (by stored offset/length, never a full scan).
 *
 * The rebuild scanner is a minimal "key": value extractor that
 * assumes machine-generated rows (runResultToJsonLine), not a JSON
 * parser for arbitrary documents.
 */

#ifndef BMC_SIM_CATALOG_HH
#define BMC_SIM_CATALOG_HH

#include <cstdint>
#include <string>
#include <vector>

namespace bmc::sim
{

/**
 * Catalog index file-format version. Bump when the sidecar layout
 * changes; readers rebuild older versions from the JSONL. Listed in
 * EXPERIMENTS.md's schema-version registry.
 */
constexpr std::uint32_t kCatalogIndexVersion = 1;

/** Sidecar index path for a results JSONL: "<jsonl>.idx". */
std::string catalogIndexPath(const std::string &jsonl_path);

/** One indexed row: its location in the JSONL plus typed columns. */
struct CatalogRow
{
    /** Byte offset of the line start inside the JSONL. */
    std::uint64_t offset = 0;
    /** Line length in bytes, excluding the trailing '\n'. */
    std::uint32_t length = 0;
    bool ok = false;
    /** Values parallel to Catalog::stringCols. */
    std::vector<std::string> strs;
    /** Values parallel to Catalog::numericCols; NaN = missing. */
    std::vector<double> nums;
};

/** An indexed results catalog: one JSONL file plus its row index. */
struct Catalog
{
    std::string jsonlPath;
    /** schema_version carried by the indexed rows. */
    std::uint32_t rowSchemaVersion = 0;
    /** JSONL bytes the index covers (complete lines only). */
    std::uint64_t jsonlBytes = 0;
    std::vector<std::string> stringCols;
    std::vector<std::string> numericCols;
    std::vector<CatalogRow> rows;

    /** Index of @p name in stringCols, or -1. */
    int stringCol(const std::string &name) const;
    /** Index of @p name in numericCols, or -1. */
    int numericCol(const std::string &name) const;
};

/** String columns every catalog indexes (label/workload/scheme). */
const std::vector<std::string> &catalogStringColumns();

/** Curated metric columns every catalog indexes. */
const std::vector<std::string> &catalogMetricColumns();

/**
 * Full numeric column list for a catalog whose cells carry the named
 * variant-axis params: "run", "seed", the params, the curated
 * metrics, then (opt-in) the profiler gauge columns.
 */
std::vector<std::string>
catalogNumericColumns(const std::vector<std::string> &param_names,
                      bool with_profile);

/**
 * Build one index row from a serialized JSONL line (offset/length
 * still unset; the sweep driver assigns them at flush time). The row
 * is derived from the text, not from in-memory doubles, so a sidecar
 * written alongside the JSONL is bit-identical to one rebuilt from
 * it later. Missing values -- metrics of a failed run, params the
 * cell does not carry, ANTT fields of a non-ANTT run -- are NaN.
 */
CatalogRow
catalogRowFromLine(const std::string &json_line,
                   const std::vector<std::string> &param_names,
                   bool with_profile);

/** Serialize @p c to its sidecar index file (bmc_fatal on I/O). */
void writeCatalogIndex(const Catalog &c);

/**
 * Re-derive the index by scanning the JSONL (dropping an incomplete
 * trailing line), persist it, and return it.
 */
Catalog rebuildCatalogIndex(const std::string &jsonl_path);

/**
 * Load the catalog for @p jsonl_path, applying the durability
 * contract above. @p force_rebuild skips the sidecar entirely.
 */
Catalog loadCatalog(const std::string &jsonl_path,
                    bool force_rebuild = false);

/**
 * Fetch one row's bytes from the catalog's JSONL by stored
 * offset/length -- a single positioned read, never a scan. This is
 * the only query path that touches the JSONL; everything indexed
 * answers from the sidecar alone.
 */
std::string catalogFetchLine(const Catalog &c, const CatalogRow &row);

/** Extract `"key": <number>` from a row line; NaN when absent. */
double catalogLineNumber(const std::string &line,
                         const std::string &key);

/** Extract `"key": "<string>"` from a row line; "" when absent. */
std::string catalogLineString(const std::string &line,
                              const std::string &key);

} // namespace bmc::sim

#endif // BMC_SIM_CATALOG_HH
