#include "sim/query.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>

#include "common/logging.hh"
#include "common/table.hh"

namespace bmc::sim
{

namespace
{

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

const char *
predOpName(PredOp op)
{
    switch (op) {
      case PredOp::Eq:
        return "=";
      case PredOp::Ne:
        return "!=";
      case PredOp::Lt:
        return "<";
      case PredOp::Le:
        return "<=";
      case PredOp::Gt:
        return ">";
      case PredOp::Ge:
        return ">=";
    }
    return "?";
}

const char *
aggFnName(AggFn fn)
{
    switch (fn) {
      case AggFn::Min:
        return "min";
      case AggFn::Mean:
        return "mean";
      case AggFn::Max:
        return "max";
      case AggFn::P50:
        return "p50";
      case AggFn::P95:
        return "p95";
      case AggFn::Sum:
        return "sum";
      case AggFn::Count:
        return "count";
    }
    return "?";
}

std::vector<std::string>
splitList(const std::string &spec)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string item = spec.substr(pos, comma - pos);
        if (!item.empty())
            out.push_back(item);
        pos = comma + 1;
    }
    return out;
}

/** How a column name resolves against one catalog. */
struct ColumnRef
{
    enum Kind
    {
        kFile, //!< catalog JSONL path (string pseudo-column)
        kOk,   //!< row ok flag as 1/0 (numeric pseudo-column)
        kStr,  //!< indexed string column
        kNum,  //!< indexed numeric column
        kLazy, //!< not indexed: fetch the row bytes on demand
    } kind = kLazy;
    int index = -1;
};

ColumnRef
resolveColumn(const Catalog &c, const std::string &name)
{
    ColumnRef ref;
    if (name == "file") {
        ref.kind = ColumnRef::kFile;
    } else if (name == "ok") {
        ref.kind = ColumnRef::kOk;
    } else if (int s = c.stringCol(name); s >= 0) {
        ref.kind = ColumnRef::kStr;
        ref.index = s;
    } else if (int n = c.numericCol(name); n >= 0) {
        ref.kind = ColumnRef::kNum;
        ref.index = n;
    }
    return ref;
}

std::string
availableColumns(const std::vector<Catalog> &catalogs)
{
    std::vector<std::string> cols = {"file", "ok"};
    for (const Catalog &c : catalogs) {
        for (const auto &group : {c.stringCols, c.numericCols}) {
            for (const std::string &name : group) {
                if (std::find(cols.begin(), cols.end(), name) ==
                    cols.end()) {
                    cols.push_back(name);
                }
            }
        }
    }
    std::string out;
    for (const std::string &name : cols) {
        if (!out.empty())
            out += ", ";
        out += name;
    }
    return out;
}

/**
 * Resolve an *indexed* column (predicates, group keys, aggregates);
 * bmc_fatal when the name would need a JSONL fetch.
 */
ColumnRef
requireIndexed(const std::vector<Catalog> &catalogs,
               const Catalog &c, const std::string &name,
               const char *use)
{
    const ColumnRef ref = resolveColumn(c, name);
    if (ref.kind == ColumnRef::kLazy) {
        bmc_fatal("%s column '%s' is not indexed in '%s'; indexed "
                  "columns: %s",
                  use, name.c_str(), c.jsonlPath.c_str(),
                  availableColumns(catalogs).c_str());
    }
    return ref;
}

QueryCell
numCell(double v)
{
    QueryCell cell;
    cell.isNum = true;
    cell.num = v;
    return cell;
}

QueryCell
strCell(std::string s)
{
    QueryCell cell;
    cell.str = std::move(s);
    return cell;
}

/** Indexed cell value (never touches the JSONL). */
QueryCell
indexedCell(const Catalog &c, const CatalogRow &row,
            const ColumnRef &ref)
{
    switch (ref.kind) {
      case ColumnRef::kFile:
        return strCell(c.jsonlPath);
      case ColumnRef::kOk:
        return numCell(row.ok ? 1.0 : 0.0);
      case ColumnRef::kStr:
        return strCell(row.strs[static_cast<std::size_t>(ref.index)]);
      case ColumnRef::kNum:
        return numCell(row.nums[static_cast<std::size_t>(ref.index)]);
      case ColumnRef::kLazy:
        break;
    }
    bmc_panic("indexedCell on a lazy column");
    return QueryCell{};
}

std::string
formatNum(double v)
{
    if (std::isnan(v))
        return "nan";
    if (v == std::floor(v) && std::fabs(v) < 9.0e15)
        return strfmt("%.0f", v);
    return strfmt("%.6g", v);
}

std::string
cellText(const QueryCell &cell)
{
    return cell.isNum ? formatNum(cell.num) : cell.str;
}

bool
predicateHolds(const QueryPredicate &p, const QueryCell &cell)
{
    if (cell.isNum) {
        if (!p.isNum)
            return p.op == PredOp::Ne; // number vs non-number text
        const double a = cell.num;
        const double b = p.num;
        if (std::isnan(a))
            return p.op == PredOp::Ne; // missing matches nothing
        switch (p.op) {
          case PredOp::Eq:
            return a == b;
          case PredOp::Ne:
            return a != b;
          case PredOp::Lt:
            return a < b;
          case PredOp::Le:
            return a <= b;
          case PredOp::Gt:
            return a > b;
          case PredOp::Ge:
            return a >= b;
        }
        return false;
    }
    if (p.op == PredOp::Eq)
        return cell.str == p.text;
    if (p.op == PredOp::Ne)
        return cell.str != p.text;
    bmc_fatal("ordering operator '%s' is not supported on string "
              "column '%s'",
              predOpName(p.op), p.column.c_str());
    return false;
}

double
aggregate(AggFn fn, std::vector<double> &values,
          std::size_t group_rows)
{
    if (fn == AggFn::Count) {
        return values.empty()
                   ? static_cast<double>(group_rows)
                   : static_cast<double>(values.size());
    }
    if (values.empty())
        return kNan;
    switch (fn) {
      case AggFn::Min:
        return *std::min_element(values.begin(), values.end());
      case AggFn::Max:
        return *std::max_element(values.begin(), values.end());
      case AggFn::Sum:
      case AggFn::Mean: {
        double sum = 0.0;
        for (const double v : values)
            sum += v;
        return fn == AggFn::Sum
                   ? sum
                   : sum / static_cast<double>(values.size());
      }
      case AggFn::P50:
      case AggFn::P95: {
        // Nearest-rank percentile over the non-missing values.
        std::sort(values.begin(), values.end());
        const double p = fn == AggFn::P50 ? 0.50 : 0.95;
        std::size_t rank = static_cast<std::size_t>(std::ceil(
            p * static_cast<double>(values.size())));
        if (rank == 0)
            rank = 1;
        return values[rank - 1];
      }
      case AggFn::Count:
        break;
    }
    return kNan;
}

/** (catalog, row) pair surviving the predicate filter. */
struct RowRef
{
    const Catalog *cat = nullptr;
    const CatalogRow *row = nullptr;
};

void
sortAndLimit(QueryResult &res, const QueryOptions &opts)
{
    if (!opts.sortBy.empty()) {
        const auto it = std::find(res.columns.begin(),
                                  res.columns.end(), opts.sortBy);
        if (it == res.columns.end()) {
            std::string cols;
            for (const std::string &name : res.columns) {
                if (!cols.empty())
                    cols += ", ";
                cols += name;
            }
            bmc_fatal("sort column '%s' is not in the output "
                      "(columns: %s)",
                      opts.sortBy.c_str(), cols.c_str());
        }
        const std::size_t col = static_cast<std::size_t>(
            it - res.columns.begin());
        const bool desc = opts.sortDesc;
        std::stable_sort(
            res.rows.begin(), res.rows.end(),
            [col, desc](const std::vector<QueryCell> &a,
                        const std::vector<QueryCell> &b) {
                const QueryCell &x = a[col];
                const QueryCell &y = b[col];
                if (x.isNum && y.isNum) {
                    // NaN sorts last whatever the direction.
                    if (std::isnan(x.num))
                        return false;
                    if (std::isnan(y.num))
                        return true;
                    return desc ? x.num > y.num : x.num < y.num;
                }
                const std::string xs = cellText(x);
                const std::string ys = cellText(y);
                return desc ? xs > ys : xs < ys;
            });
    }
    if (opts.limit > 0 && res.rows.size() > opts.limit)
        res.rows.resize(opts.limit);
}

} // anonymous namespace

std::vector<QueryPredicate>
parseWhere(const std::string &spec)
{
    std::vector<QueryPredicate> preds;
    for (const std::string &clause : splitList(spec)) {
        // Two-char operators first so "<=" never parses as "<" "=".
        static const struct
        {
            const char *text;
            PredOp op;
        } kOps[] = {
            {"!=", PredOp::Ne}, {"<=", PredOp::Le},
            {">=", PredOp::Ge}, {"<", PredOp::Lt},
            {">", PredOp::Gt},  {"=", PredOp::Eq},
        };
        QueryPredicate p;
        std::size_t split = std::string::npos;
        std::size_t op_len = 0;
        for (const auto &cand : kOps) {
            const std::size_t pos = clause.find(cand.text);
            if (pos != std::string::npos && pos < split) {
                split = pos;
                op_len = std::char_traits<char>::length(cand.text);
                p.op = cand.op;
            }
        }
        if (split == std::string::npos || split == 0 ||
            split + op_len >= clause.size()) {
            bmc_fatal("malformed --where clause '%s' (expected "
                      "column<op>value with op one of = != < <= > "
                      ">=)",
                      clause.c_str());
        }
        p.column = clause.substr(0, split);
        p.text = clause.substr(split + op_len);
        const char *start = p.text.c_str();
        char *stop = nullptr;
        p.num = std::strtod(start, &stop);
        p.isNum = stop != start &&
                  *stop == '\0'; // whole text parsed as a number
        preds.push_back(std::move(p));
    }
    return preds;
}

std::string
AggSpec::name() const
{
    if (fn == AggFn::Count && column.empty())
        return "count";
    return strfmt("%s(%s)", aggFnName(fn), column.c_str());
}

std::vector<AggSpec>
parseAggs(const std::string &spec)
{
    std::vector<AggSpec> aggs;
    for (const std::string &clause : splitList(spec)) {
        AggSpec agg;
        const std::size_t colon = clause.find(':');
        const std::string fn = clause.substr(0, colon);
        if (colon != std::string::npos)
            agg.column = clause.substr(colon + 1);
        if (fn == "min") {
            agg.fn = AggFn::Min;
        } else if (fn == "mean") {
            agg.fn = AggFn::Mean;
        } else if (fn == "max") {
            agg.fn = AggFn::Max;
        } else if (fn == "p50") {
            agg.fn = AggFn::P50;
        } else if (fn == "p95") {
            agg.fn = AggFn::P95;
        } else if (fn == "sum") {
            agg.fn = AggFn::Sum;
        } else if (fn == "count") {
            agg.fn = AggFn::Count;
        } else {
            bmc_fatal("unknown aggregate '%s' in '%s' (expected "
                      "min/mean/max/p50/p95/sum/count)",
                      fn.c_str(), clause.c_str());
        }
        if (agg.fn != AggFn::Count && agg.column.empty()) {
            bmc_fatal("aggregate '%s' needs a column "
                      "(fn:column)",
                      clause.c_str());
        }
        aggs.push_back(std::move(agg));
    }
    return aggs;
}

QueryResult
runQuery(const std::vector<Catalog> &catalogs,
         const QueryOptions &opts)
{
    bmc_assert(!catalogs.empty(), "query over zero catalogs");

    // Predicate filter: indexed columns only, so this pass never
    // reads the JSONL however many rows the campaign has.
    std::vector<RowRef> rows;
    for (const Catalog &c : catalogs) {
        std::vector<std::pair<const QueryPredicate *, ColumnRef>>
            preds;
        for (const QueryPredicate &p : opts.where) {
            preds.emplace_back(
                &p, requireIndexed(catalogs, c, p.column,
                                   "--where"));
        }
        for (const CatalogRow &row : c.rows) {
            bool keep = true;
            for (const auto &[p, ref] : preds) {
                if (!predicateHolds(*p, indexedCell(c, row, ref))) {
                    keep = false;
                    break;
                }
            }
            if (keep)
                rows.push_back({&c, &row});
        }
    }

    QueryResult res;

    if (!opts.groupBy.empty()) {
        std::vector<AggSpec> aggs = opts.aggs;
        if (aggs.empty())
            aggs.push_back(AggSpec{AggFn::Count, ""});

        res.columns = opts.groupBy;
        for (const AggSpec &agg : aggs)
            res.columns.push_back(agg.name());

        // std::map keys the groups lexicographically, so the output
        // order is deterministic whatever the catalog order.
        struct Group
        {
            std::vector<QueryCell> key;
            std::size_t rows = 0;
            std::vector<std::vector<double>> values;
        };
        std::map<std::vector<std::string>, Group> groups;
        for (const RowRef &rr : rows) {
            std::vector<std::string> key_text;
            std::vector<QueryCell> key_cells;
            for (const std::string &name : opts.groupBy) {
                const ColumnRef ref = requireIndexed(
                    catalogs, *rr.cat, name, "--group-by");
                QueryCell cell = indexedCell(*rr.cat, *rr.row, ref);
                key_text.push_back(cellText(cell));
                key_cells.push_back(std::move(cell));
            }
            Group &g = groups[key_text];
            if (g.key.empty()) {
                g.key = std::move(key_cells);
                g.values.resize(aggs.size());
            }
            ++g.rows;
            for (std::size_t a = 0; a < aggs.size(); ++a) {
                if (aggs[a].column.empty())
                    continue;
                const ColumnRef ref = requireIndexed(
                    catalogs, *rr.cat, aggs[a].column, "--agg");
                const QueryCell cell =
                    indexedCell(*rr.cat, *rr.row, ref);
                if (!cell.isNum) {
                    bmc_fatal("--agg column '%s' is not numeric",
                              aggs[a].column.c_str());
                }
                if (!std::isnan(cell.num))
                    g.values[a].push_back(cell.num);
            }
        }
        for (auto &[key_text, g] : groups) {
            (void)key_text;
            std::vector<QueryCell> out = std::move(g.key);
            for (std::size_t a = 0; a < aggs.size(); ++a) {
                out.push_back(numCell(aggregate(
                    aggs[a].fn, g.values[a], g.rows)));
            }
            res.rows.push_back(std::move(out));
        }
        sortAndLimit(res, opts);
        return res;
    }

    // Row query. Non-indexed select columns fall back to one
    // positioned fetch per emitted row.
    res.columns = opts.select;
    if (res.columns.empty()) {
        res.columns = {"run",    "label", "workload",      "scheme",
                       "ok",     "cache_hit_rate",
                       "avg_access_latency"};
    }
    for (const RowRef &rr : rows) {
        std::vector<QueryCell> out;
        std::string line; // fetched at most once per row
        bool fetched = false;
        for (const std::string &name : res.columns) {
            const ColumnRef ref = resolveColumn(*rr.cat, name);
            if (ref.kind != ColumnRef::kLazy) {
                out.push_back(indexedCell(*rr.cat, *rr.row, ref));
                continue;
            }
            if (!fetched) {
                line = catalogFetchLine(*rr.cat, *rr.row);
                fetched = true;
            }
            const std::string s = catalogLineString(line, name);
            if (!s.empty()) {
                out.push_back(strCell(s));
            } else {
                out.push_back(
                    numCell(catalogLineNumber(line, name)));
            }
        }
        res.rows.push_back(std::move(out));
    }
    sortAndLimit(res, opts);
    return res;
}

std::string
queryToTable(const QueryResult &res)
{
    Table table(res.columns);
    for (const std::vector<QueryCell> &row : res.rows) {
        table.row();
        for (const QueryCell &cell : row)
            table.cell(cellText(cell));
    }
    return table.str();
}

std::string
queryToCsv(const QueryResult &res)
{
    auto field = [](const std::string &text) {
        if (text.find_first_of(",\"\n") == std::string::npos)
            return text;
        std::string out = "\"";
        for (const char c : text) {
            if (c == '"')
                out += '"';
            out += c;
        }
        out += '"';
        return out;
    };
    std::string out;
    for (std::size_t i = 0; i < res.columns.size(); ++i) {
        if (i)
            out += ',';
        out += field(res.columns[i]);
    }
    out += '\n';
    for (const std::vector<QueryCell> &row : res.rows) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                out += ',';
            out += field(cellText(row[i]));
        }
        out += '\n';
    }
    return out;
}

std::string
queryToJsonl(const QueryResult &res)
{
    auto escape = [](const std::string &s) {
        std::string out;
        for (const char c : s) {
            switch (c) {
              case '"':
                out += "\\\"";
                break;
              case '\\':
                out += "\\\\";
                break;
              case '\n':
                out += "\\n";
                break;
              case '\t':
                out += "\\t";
                break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    out += strfmt("\\u%04x", c);
                } else {
                    out += c;
                }
            }
        }
        return out;
    };
    std::string out;
    for (const std::vector<QueryCell> &row : res.rows) {
        out += '{';
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                out += ", ";
            out += strfmt("\"%s\": ",
                          escape(res.columns[i]).c_str());
            const QueryCell &cell = row[i];
            if (!cell.isNum) {
                out += strfmt("\"%s\"", escape(cell.str).c_str());
            } else if (std::isnan(cell.num)) {
                out += "null";
            } else {
                out += formatNum(cell.num);
            }
        }
        out += "}\n";
    }
    return out;
}

} // namespace bmc::sim
