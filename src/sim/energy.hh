/**
 * @file
 * Memory-system energy model (Section V-H).
 *
 * The paper computes energy from "the number of accesses, DRAM cache
 * hit rate, way locator hit rate, row buffer hit rates in the cache
 * and main memory, and the amount of data transferred". This model
 * does the same from measured activity: every ACT/PRE pair, column
 * access, transferred byte and refresh is counted by the DRAM
 * channels, and SRAM structures are charged per lookup via the
 * CactiLite energy estimate.
 *
 * Per-operation energies are representative 22 nm-era values; the
 * experiments report *relative* savings (Fig 11), which depend on
 * the activity ratios rather than the absolute scale:
 *  - off-chip I/O costs ~5x more per byte than TSV-stacked transfer;
 *  - an off-chip row activation costs ~1.5x a stacked one (smaller
 *    stacked pages/arrays).
 */

#ifndef BMC_SIM_ENERGY_HH
#define BMC_SIM_ENERGY_HH

#include <cstdint>

#include "dram/channel.hh"

namespace bmc::sim
{

/** Per-operation energy costs in picojoules. */
struct EnergyParams
{
    double stackedActPrePj = 2000.0;  //!< per ACT+PRE pair
    double offchipActPrePj = 3000.0;
    double stackedPerBytePj = 4.0;    //!< column + TSV transfer
    double offchipPerBytePj = 20.0;   //!< column + board I/O
    double stackedRefreshPj = 30000.0;
    double offchipRefreshPj = 45000.0;
};

/** Energy totals for a run. */
struct EnergyBreakdown
{
    double stackedPj = 0.0;
    double offchipPj = 0.0;
    double sramPj = 0.0;

    double totalPj() const { return stackedPj + offchipPj + sramPj; }
    double totalMj() const { return totalPj() * 1e-9; }
};

/**
 * Fold activity counters into energy.
 *
 * @param stacked      stacked-DRAM (cache) activity
 * @param offchip      main-memory activity
 * @param sram_lookups number of SRAM structure lookups performed
 * @param sram_bytes   size of the SRAM structure (for per-access
 *                     energy via CactiLite)
 */
EnergyBreakdown
computeEnergy(const dram::ActivityCounters &stacked,
              const dram::ActivityCounters &offchip,
              std::uint64_t sram_lookups, std::uint64_t sram_bytes,
              const EnergyParams &params = {});

} // namespace bmc::sim

#endif // BMC_SIM_ENERGY_HH
