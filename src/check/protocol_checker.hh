/**
 * @file
 * DDR protocol checker over the observed command stream.
 *
 * The checker attaches to a channel model through the CmdObserver
 * hook (dram/cmd_observer.hh) and independently re-derives the
 * legality of every command from the raw (kind, bank, row, tick)
 * stream, using only the configured TimingParams -- none of the
 * model's internal fences. A violation routes through bmc_fatal with
 * a dump of the recent command history, so a violating configuration
 * inside a sweep is isolated under ScopedThrowErrors and surfaces as
 * a failed row rather than a process abort.
 *
 * The two channel models emit streams with different guarantees
 * (see cmd_observer.hh), so the rule set is selected per model:
 *
 *  - forReservationModel(): per-bank window checks only. The
 *    reservation model computes command times at reservation time,
 *    does not model tRRD/tFAW/tWTR, uses tCL for write data and
 *    keeps no command bus, so those checks are off. Reserved times
 *    may also run ahead of the lazily-applied refresh, so refresh
 *    checks are stream-order based (commands after a REF event) and
 *    there is no missed-deadline check.
 *
 *  - forCommandModel(): the full first-order DDR rule set, including
 *    tRRD, the four-activate window, channel-wide tCCD, the tWTR
 *    turnaround, tCWL write data timing, one-command-per-DRAM-clock
 *    bus spacing and the refresh deadline (no command may issue at
 *    or after a due-but-unserved refresh).
 */

#ifndef BMC_CHECK_PROTOCOL_CHECKER_HH
#define BMC_CHECK_PROTOCOL_CHECKER_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/types.hh"
#include "dram/cmd_observer.hh"
#include "dram/timing_params.hh"

namespace bmc::check
{

/** Which DDR rules apply to an observed stream. */
struct ProtocolRules
{
    dram::TimingParams t;

    bool interBankActWindow = false; //!< tRRD + tFAW across banks
    bool globalCcd = false;          //!< channel-wide tCCD fence
    bool busTurnaround = false;      //!< tWTR + write-after-read
    bool casUsesCwl = false;         //!< write data after tCWL (else tCL)
    bool cmdBusSpacing = false;      //!< >= 1 nCK between commands
    bool strictTrp = false; //!< tRP vs any prior PRE (else only vs an
                            //!< immediately preceding PRE on the bank)
    bool refreshDeadline = false; //!< no command at/after a due REF

    static ProtocolRules forReservationModel(
        const dram::TimingParams &params);
    static ProtocolRules forCommandModel(
        const dram::TimingParams &params);

    /** Dispatch on params.commandLevel. */
    static ProtocolRules forParams(const dram::TimingParams &params);
};

/** Re-derives DDR legality of every observed command. */
class ProtocolChecker : public dram::CmdObserver
{
  public:
    /** @p name labels violation reports (e.g. "stacked", "mem"). */
    ProtocolChecker(std::string name, const ProtocolRules &rules);

    void onCommand(const dram::CmdEvent &ev) override;

    std::uint64_t commandsChecked() const { return checked_; }
    std::uint64_t refreshesChecked() const { return refChecked_; }

  private:
    struct BankCheck
    {
        bool rowOpen = false;
        std::uint64_t openRow = 0;
        bool sawAct = false;
        Tick actAt = 0; //!< ACT that opened the current row
        bool sawPre = false;
        bool lastWasPre = false;
        Tick lastPreAt = 0;
        bool sawCas = false;
        Tick lastCasAt = 0; //!< per-bank tCCD fence
        bool sawReadCas = false;
        Tick lastReadCasAt = 0; //!< tRTP fence
        bool sawWrite = false;
        Tick lastWriteDataEnd = 0; //!< tWR fence
    };

    struct ChanCheck
    {
        std::vector<BankCheck> banks;
        bool sawData = false;
        Tick lastDataEnd = 0; //!< shared data-bus fence
        bool sawReadData = false;
        Tick lastReadDataEnd = 0; //!< write-after-read turnaround
        bool sawWriteData = false;
        Tick lastWriteDataEnd = 0; //!< channel-wide tWTR fence
        bool sawCmd = false;
        Tick lastCmdAt = 0; //!< command-bus occupancy
        bool sawCasAny = false;
        Tick lastCasAt = 0;           //!< channel-wide tCCD fence
        std::deque<Tick> recentActs;  //!< last 4 ACTs (tRRD / tFAW)
        Tick expectedNextRef = 0;     //!< nominal refresh cadence
        bool sawRef = false;
        Tick refBlockedUntil = 0; //!< nominal + tRFC
    };

    ChanCheck &chan(unsigned channel);
    void checkAct(ChanCheck &cc, BankCheck &bank,
                  const dram::CmdEvent &ev);
    void checkPre(ChanCheck &cc, BankCheck &bank,
                  const dram::CmdEvent &ev);
    void checkCas(ChanCheck &cc, BankCheck &bank,
                  const dram::CmdEvent &ev);
    void checkRef(ChanCheck &cc, const dram::CmdEvent &ev);

    /** Assert @p at >= @p fence for rule @p rule. */
    void require(const dram::CmdEvent &ev, const char *rule,
                 Tick at, Tick fence);

    [[noreturn]] void fail(const dram::CmdEvent &ev,
                           const std::string &what);
    void remember(const dram::CmdEvent &ev);
    std::string renderHistory() const;

    std::string name_;
    ProtocolRules r_;
    std::vector<ChanCheck> chans_;
    std::vector<dram::CmdEvent> history_; //!< ring of recent commands
    std::size_t histNext_ = 0;
    std::uint64_t checked_ = 0;
    std::uint64_t refChecked_ = 0;
};

} // namespace bmc::check

#endif // BMC_CHECK_PROTOCOL_CHECKER_HH
