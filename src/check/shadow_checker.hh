/**
 * @file
 * Shadow-consistency checker for the DRAM cache organizations.
 *
 * Attaches to the DramCacheController's check-observer slot and
 * maintains an independent functional shadow of the access stream:
 *
 *  - residency: after a non-bypass access the organization must
 *    report the 64 B line resident (probe());
 *  - provenance: a hit is only legal if the enclosing 4 KB region
 *    was accessed before -- a first-touch hit means the tag store
 *    invented data (the Banshee class of metadata bugs);
 *  - dirty bookkeeping: the shadow marks lines dirty on non-bypass
 *    writes; every 64 B line an organization writes back must be
 *    shadow-dirty (a clean-line writeback means dirty-mask
 *    corruption), and is cleaned once written back;
 *  - MSHR balance: primaries == completions + outstanding at every
 *    observed access;
 *  - deep structural audit: org.auditInvariants() -- duplicate tags,
 *    way-locator/tag-store disagreement, (X, Y) capacity sums,
 *    replacement-state validity -- every auditEvery accesses (the
 *    audit is O(sets)) and once more from finish().
 *
 * Violations route through bmc_fatal, so a failing configuration
 * inside a sweep or the fuzzer is isolated under ScopedThrowErrors.
 */

#ifndef BMC_CHECK_SHADOW_CHECKER_HH
#define BMC_CHECK_SHADOW_CHECKER_HH

#include <cstdint>
#include <unordered_set>

#include "common/types.hh"
#include "dramcache/org.hh"

namespace bmc::cache
{
class MshrFile;
}

namespace bmc::check
{

/** Cross-checks every controller access against a functional shadow. */
class ShadowChecker
{
  public:
    /** @p mshrs may be null (no MSHR balance check). */
    ShadowChecker(const dramcache::DramCacheOrg &org,
                  const cache::MshrFile *mshrs,
                  std::uint64_t audit_every = 1024);

    /** Observe one controller access (AccessObserver signature). */
    void onAccess(Addr addr, bool is_write, bool is_prefetch,
                  const dramcache::LookupResult &r);

    /**
     * Pre-seed shadow state for one resident line of a warm-started
     * (checkpoint-restored) organization: the line's 4 KB region is
     * marked touched, and the line marked dirty when @p dirty. The
     * checker otherwise assumes a cold cache and would flag restored
     * contents as fabricated residency.
     */
    void seedLine(Addr addr, bool dirty);

    /** Final deep audit; call once after the run drains. */
    void finish() const;

    std::uint64_t accessesChecked() const { return checked_; }
    std::uint64_t auditsRun() const { return audits_; }

  private:
    void fail(Addr addr, const std::string &what) const;
    void runAudit() const;

    const dramcache::DramCacheOrg &org_;
    const cache::MshrFile *mshrs_;
    std::uint64_t auditEvery_;

    std::unordered_set<std::uint64_t> touchedRegions_; //!< addr >> 12
    std::unordered_set<std::uint64_t> dirtyLines_;     //!< addr >> 6
    std::uint64_t checked_ = 0;
    mutable std::uint64_t audits_ = 0;
};

} // namespace bmc::check

#endif // BMC_CHECK_SHADOW_CHECKER_HH
