/**
 * @file
 * Randomized configuration x trace fuzzer for the whole simulator.
 *
 * Each fuzz case derives, from one 64-bit seed, a random machine
 * configuration (scheme, geometry, DRAM model, core count, MLP,
 * prefetcher, ...) and a random synthetic trace per core (explicit
 * TraceRecord vectors mixing sequential, strided, hot-page, temporal
 * -reuse and random accesses). The case runs as a normal timing
 * System with the runtime checkers armed (src/check) under
 * ScopedThrowErrors, so any protocol violation, shadow-consistency
 * break, assertion or crash-by-exception surfaces as a failure tied
 * to that seed.
 *
 * Failing cases are shrunk with a ddmin-style loop that removes
 * trace chunks while the failure reproduces, then saved as
 * self-contained text repro files (config header + the exact
 * records) that replay deterministically -- the regression corpus in
 * tests/corpus/ holds such files for bugs that have been fixed.
 *
 * Cases are independent, so the fuzz loop fans out on the shared
 * thread pool; seed derivation is deriveRunSeed(base, index), making
 * every report reproducible from (base seed, case count) alone.
 */

#ifndef BMC_CHECK_FUZZ_HH
#define BMC_CHECK_FUZZ_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/schemes.hh"
#include "sim/system.hh"
#include "trace/generator.hh"

namespace bmc::check
{

/** One fully materialized fuzz case. */
struct FuzzCase
{
    std::uint64_t seed = 0;
    sim::MachineConfig cfg;
    /** One explicit record list per core (cfg.cores entries). */
    std::vector<std::vector<trace::TraceRecord>> traces;

    std::size_t totalRecords() const
    {
        std::size_t n = 0;
        for (const auto &t : traces)
            n += t.size();
        return n;
    }
};

/** Fuzz-loop knobs (the bmcfuzz CLI maps onto this 1:1). */
struct FuzzOptions
{
    std::uint64_t seeds = 50;   //!< number of cases to run
    std::uint64_t baseSeed = 1; //!< case i uses deriveRunSeed(base,i)
    unsigned threads = 1;       //!< worker threads (0 = all cores)
    /** Pin every case to this scheme ("" = random per case). */
    std::string scheme;
    /** Directory for shrunk repro files ("" = don't save). */
    std::string reproDir;
    bool shrink = true;
    /** Shrink target: stop once a repro is this small. */
    std::size_t maxReproRecords = 100;
    /** Scratch directory for the temporary .bmct trace files. */
    std::string tmpDir = "/tmp";
    /** Checkers to arm; defaults to everything on. */
    sim::CheckConfig check{/*protocol=*/true, /*shadow=*/true};
};

/** One failing case, post-shrink. */
struct FuzzFailure
{
    std::uint64_t seed = 0;
    std::string error;     //!< checker/assert message of the run
    std::string reproPath; //!< saved repro file ("" if not saved)
    std::size_t records = 0; //!< record count after shrinking
};

struct FuzzReport
{
    std::uint64_t casesRun = 0;
    std::vector<FuzzFailure> failures; //!< sorted by seed
    bool ok() const { return failures.empty(); }
};

/** Deterministically materialize the case for @p case_seed. */
FuzzCase sampleCase(std::uint64_t case_seed, const FuzzOptions &opts);

/**
 * Execute one case (checkers per @p check) under ScopedThrowErrors.
 * Returns the error text, or "" for a clean run. Temp trace files go
 * to @p tmp_dir and are removed afterwards.
 */
std::string runCase(const FuzzCase &c, const sim::CheckConfig &check,
                    const std::string &tmp_dir);

/**
 * ddmin-style minimization: repeatedly drop trace chunks while the
 * case still fails, until no chunk can be removed or the case is
 * already within @p max_records. Returns the shrunk case (always
 * still failing).
 */
FuzzCase shrinkCase(const FuzzCase &c, const sim::CheckConfig &check,
                    const std::string &tmp_dir,
                    std::size_t max_records);

/** Write @p c as a self-contained text repro ('#' lines ignored on
 *  load; @p note becomes a leading comment). bmc_fatal on IO error. */
void saveRepro(const FuzzCase &c, const std::string &note,
               const std::string &path);

/** Parse a repro file back into a runnable case. bmc_fatal on a
 *  malformed file. */
FuzzCase loadRepro(const std::string &path);

/** Called after every case: (cases done, total, failure or null). */
using FuzzProgress = std::function<void(
    std::uint64_t, std::uint64_t, const FuzzFailure *)>;

/** Run the whole fuzz loop on the thread pool. */
FuzzReport runFuzz(const FuzzOptions &opts,
                   const FuzzProgress &progress = nullptr);

} // namespace bmc::check

#endif // BMC_CHECK_FUZZ_HH
