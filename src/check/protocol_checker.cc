#include "check/protocol_checker.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"

namespace bmc::check
{

namespace
{
constexpr std::size_t kHistoryCap = 128;
} // anonymous namespace

ProtocolRules
ProtocolRules::forReservationModel(const dram::TimingParams &params)
{
    ProtocolRules r;
    r.t = params;
    return r;
}

ProtocolRules
ProtocolRules::forCommandModel(const dram::TimingParams &params)
{
    ProtocolRules r;
    r.t = params;
    r.interBankActWindow = true;
    r.globalCcd = true;
    r.busTurnaround = true;
    r.casUsesCwl = true;
    r.cmdBusSpacing = true;
    r.strictTrp = true;
    r.refreshDeadline = true;
    return r;
}

ProtocolRules
ProtocolRules::forParams(const dram::TimingParams &params)
{
    return params.commandLevel ? forCommandModel(params)
                               : forReservationModel(params);
}

ProtocolChecker::ProtocolChecker(std::string name,
                                 const ProtocolRules &rules)
    : name_(std::move(name)), r_(rules)
{
    history_.reserve(kHistoryCap);
}

ProtocolChecker::ChanCheck &
ProtocolChecker::chan(unsigned channel)
{
    if (channel >= chans_.size())
        chans_.resize(channel + 1);
    ChanCheck &cc = chans_[channel];
    if (cc.banks.empty()) {
        cc.banks.resize(std::max(1u, r_.t.banksPerChannel));
        cc.expectedNextRef = r_.t.toTicks(r_.t.tREFI);
    }
    return cc;
}

void
ProtocolChecker::remember(const dram::CmdEvent &ev)
{
    if (history_.size() < kHistoryCap) {
        history_.push_back(ev);
        histNext_ = history_.size() % kHistoryCap;
    } else {
        history_[histNext_] = ev;
        histNext_ = (histNext_ + 1) % kHistoryCap;
    }
}

std::string
ProtocolChecker::renderHistory() const
{
    std::string out;
    const std::size_t n = history_.size();
    // Oldest first: the ring's write cursor is the oldest entry once
    // the buffer has wrapped.
    const std::size_t start = n < kHistoryCap ? 0 : histNext_;
    for (std::size_t i = 0; i < n; ++i) {
        const dram::CmdEvent &ev = history_[(start + i) % n];
        out += strfmt("  [%3zu] %-3s ch%u", i,
                      dram::cmdKindName(ev.kind), ev.channel);
        if (ev.kind != dram::CmdKind::Ref)
            out += strfmt(" bank%-2u row%llu", ev.bank,
                          static_cast<unsigned long long>(ev.row));
        out += strfmt(" @%llu",
                      static_cast<unsigned long long>(ev.at));
        if (ev.kind == dram::CmdKind::Rd ||
            ev.kind == dram::CmdKind::Wr) {
            out += strfmt(
                " data[%llu,%llu) %uB",
                static_cast<unsigned long long>(ev.dataStart),
                static_cast<unsigned long long>(ev.dataEnd),
                ev.bytes);
        }
        out += "\n";
    }
    return out;
}

void
ProtocolChecker::fail(const dram::CmdEvent &ev, const std::string &what)
{
    bmc_fatal(
        "protocol checker [%s]: %s\n"
        "  offending: %s ch%u bank%u row%llu @%llu\n"
        "command history (oldest first):\n%s",
        name_.c_str(), what.c_str(), dram::cmdKindName(ev.kind),
        ev.channel, ev.bank, static_cast<unsigned long long>(ev.row),
        static_cast<unsigned long long>(ev.at),
        renderHistory().c_str());
    // bmc_fatal either aborts or throws SimError; not reached.
    std::abort();
}

void
ProtocolChecker::require(const dram::CmdEvent &ev, const char *rule,
                         Tick at, Tick fence)
{
    if (at < fence) {
        fail(ev, strfmt("%s violated: tick %llu < fence %llu "
                        "(short by %llu)",
                        rule, static_cast<unsigned long long>(at),
                        static_cast<unsigned long long>(fence),
                        static_cast<unsigned long long>(fence - at)));
    }
}

void
ProtocolChecker::checkAct(ChanCheck &cc, BankCheck &bank,
                          const dram::CmdEvent &ev)
{
    if (bank.rowOpen)
        fail(ev, "ACT on a bank whose row is still open");
    if (r_.strictTrp) {
        if (bank.sawPre)
            require(ev, "tRP (PRE to ACT)", ev.at,
                    bank.lastPreAt + r_.t.toTicks(r_.t.tRP));
    } else if (bank.lastWasPre) {
        // Reservation model: a PRE/ACT pair is reserved together, so
        // the fence is only meaningful against the paired PRE.
        require(ev, "tRP (PRE to ACT)", ev.at,
                bank.lastPreAt + r_.t.toTicks(r_.t.tRP));
    }
    if (cc.sawRef)
        require(ev, "tRFC (REF to ACT)", ev.at, cc.refBlockedUntil);
    if (r_.interBankActWindow && !cc.recentActs.empty()) {
        require(ev, "tRRD (ACT to ACT)", ev.at,
                cc.recentActs.back() + r_.t.toTicks(r_.t.tRRD));
        if (cc.recentActs.size() >= 4) {
            require(ev, "tFAW (four-activate window)", ev.at,
                    cc.recentActs.front() + r_.t.toTicks(r_.t.tFAW));
        }
    }
    cc.recentActs.push_back(ev.at);
    if (cc.recentActs.size() > 4)
        cc.recentActs.pop_front();
    bank.rowOpen = true;
    bank.openRow = ev.row;
    bank.sawAct = true;
    bank.actAt = ev.at;
    bank.lastWasPre = false;
}

void
ProtocolChecker::checkPre(ChanCheck &cc, BankCheck &bank,
                          const dram::CmdEvent &ev)
{
    (void)cc;
    if (!bank.rowOpen)
        fail(ev, "PRE on a bank with no open row");
    if (bank.openRow != ev.row) {
        fail(ev, strfmt("PRE closes row %llu but row %llu is open",
                        static_cast<unsigned long long>(ev.row),
                        static_cast<unsigned long long>(
                            bank.openRow)));
    }
    require(ev, "tRAS (ACT to PRE)", ev.at,
            bank.actAt + r_.t.toTicks(r_.t.tRAS));
    if (bank.sawReadCas)
        require(ev, "tRTP (read to PRE)", ev.at,
                bank.lastReadCasAt + r_.t.toTicks(r_.t.tRTP));
    if (bank.sawWrite)
        require(ev, "tWR (write recovery)", ev.at,
                bank.lastWriteDataEnd + r_.t.toTicks(r_.t.tWR));
    bank.rowOpen = false;
    bank.sawPre = true;
    bank.lastWasPre = true;
    bank.lastPreAt = ev.at;
}

void
ProtocolChecker::checkCas(ChanCheck &cc, BankCheck &bank,
                          const dram::CmdEvent &ev)
{
    const bool is_write = ev.kind == dram::CmdKind::Wr;
    if (!bank.rowOpen)
        fail(ev, "column command on a bank with no open row");
    if (bank.openRow != ev.row) {
        fail(ev, strfmt("column command to row %llu but row %llu "
                        "is open",
                        static_cast<unsigned long long>(ev.row),
                        static_cast<unsigned long long>(
                            bank.openRow)));
    }
    require(ev, "tRCD (ACT to column)", ev.at,
            bank.actAt + r_.t.toTicks(r_.t.tRCD));
    if (bank.sawCas)
        require(ev, "tCCD (bank column to column)", ev.at,
                bank.lastCasAt + r_.t.toTicks(r_.t.tCCD));
    if (r_.globalCcd && cc.sawCasAny)
        require(ev, "tCCD (channel column to column)", ev.at,
                cc.lastCasAt + r_.t.toTicks(r_.t.tCCD));
    if (r_.busTurnaround && !is_write && cc.sawWriteData)
        require(ev, "tWTR (write to read)", ev.at,
                cc.lastWriteDataEnd + r_.t.toTicks(r_.t.tWTR));

    // Data burst timing: CAS latency, transfer length, shared-bus
    // non-overlap, and (command model) write-after-read turnaround.
    const Tick cl =
        r_.t.toTicks(is_write && r_.casUsesCwl ? r_.t.tCWL
                                               : r_.t.tCL);
    if (ev.dataStart != ev.at + cl) {
        fail(ev, strfmt("data burst starts at %llu, expected CAS + "
                        "%s = %llu",
                        static_cast<unsigned long long>(ev.dataStart),
                        is_write && r_.casUsesCwl ? "tCWL" : "tCL",
                        static_cast<unsigned long long>(ev.at + cl)));
    }
    if (ev.dataEnd != ev.dataStart + r_.t.transferTicks(ev.bytes)) {
        fail(ev, strfmt("data burst [%llu,%llu) does not match the "
                        "%uB transfer time",
                        static_cast<unsigned long long>(ev.dataStart),
                        static_cast<unsigned long long>(ev.dataEnd),
                        ev.bytes));
    }
    if (cc.sawData)
        require(ev, "data-bus overlap", ev.dataStart,
                cc.lastDataEnd);
    if (r_.busTurnaround && is_write && cc.sawReadData)
        require(ev, "write burst under a read burst", ev.dataStart,
                cc.lastReadDataEnd);

    bank.sawCas = true;
    bank.lastCasAt = ev.at;
    cc.sawCasAny = true;
    cc.lastCasAt = ev.at;
    cc.sawData = true;
    cc.lastDataEnd = std::max(cc.lastDataEnd, ev.dataEnd);
    if (is_write) {
        bank.sawWrite = true;
        bank.lastWriteDataEnd = ev.dataEnd;
        cc.sawWriteData = true;
        cc.lastWriteDataEnd = ev.dataEnd;
    } else {
        bank.sawReadCas = true;
        bank.lastReadCasAt = ev.at;
        cc.sawReadData = true;
        cc.lastReadDataEnd = ev.dataEnd;
    }
    bank.lastWasPre = false;
}

void
ProtocolChecker::checkRef(ChanCheck &cc, const dram::CmdEvent &ev)
{
    if (!r_.t.refreshEnabled)
        fail(ev, "REF observed with refresh disabled");
    if (ev.at != cc.expectedNextRef) {
        fail(ev, strfmt("refresh cadence broken: nominal %llu, "
                        "expected %llu (tREFI = %llu ticks)",
                        static_cast<unsigned long long>(ev.at),
                        static_cast<unsigned long long>(
                            cc.expectedNextRef),
                        static_cast<unsigned long long>(
                            r_.t.toTicks(r_.t.tREFI))));
    }
    cc.expectedNextRef += r_.t.toTicks(r_.t.tREFI);
    cc.sawRef = true;
    cc.refBlockedUntil = ev.at + r_.t.toTicks(r_.t.tRFC);
    for (BankCheck &bank : cc.banks) {
        bank.rowOpen = false;
        bank.lastWasPre = false;
    }
    ++refChecked_;
}

void
ProtocolChecker::onCommand(const dram::CmdEvent &ev)
{
    remember(ev);
    ChanCheck &cc = chan(ev.channel);

    if (ev.kind == dram::CmdKind::Ref) {
        // REF is lazy (nominal tick, possibly far behind the command
        // that triggered the catch-up): exempt from bus checks.
        checkRef(cc, ev);
        return;
    }

    if (ev.bank >= cc.banks.size())
        fail(ev, strfmt("bank %u out of range (%zu banks)", ev.bank,
                        cc.banks.size()));
    BankCheck &bank = cc.banks[ev.bank];

    if (r_.cmdBusSpacing && cc.sawCmd)
        require(ev, "command-bus occupancy (1 cmd/nCK)", ev.at,
                cc.lastCmdAt + r_.t.toTicks(1));
    if (r_.refreshDeadline && r_.t.refreshEnabled &&
        ev.at >= cc.expectedNextRef) {
        fail(ev, strfmt("missed refresh deadline: command at %llu "
                        "but refresh was due at %llu",
                        static_cast<unsigned long long>(ev.at),
                        static_cast<unsigned long long>(
                            cc.expectedNextRef)));
    }

    switch (ev.kind) {
      case dram::CmdKind::Act:
        checkAct(cc, bank, ev);
        break;
      case dram::CmdKind::Pre:
        checkPre(cc, bank, ev);
        break;
      case dram::CmdKind::Rd:
      case dram::CmdKind::Wr:
        checkCas(cc, bank, ev);
        break;
      case dram::CmdKind::Ref:
        break;
    }
    cc.sawCmd = true;
    cc.lastCmdAt = ev.at;
    ++checked_;
}

} // namespace bmc::check
