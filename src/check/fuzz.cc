#include "check/fuzz.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "sim/sweep.hh"
#include "trace/trace_file.hh"

namespace bmc::check
{

namespace
{

constexpr std::uint64_t kLine = 64;

/** Schemes eligible for random sampling: everything the registry
 *  knows, so new organizations are fuzzed automatically. */
const std::vector<sim::Scheme> &
fuzzableSchemes()
{
    static const std::vector<sim::Scheme> all = sim::allSchemes();
    return all;
}

/** Legal (setBytes, bigBlockBytes) pairs: power-of-two, big divides
 *  set, and big <= 4 KB so fills stay inside one shadow region. */
struct Geometry
{
    std::uint32_t setBytes;
    std::uint32_t bigBytes;
};
constexpr Geometry kGeometries[] = {
    {1024, 256}, {2048, 256},  {2048, 512},
    {4096, 512}, {2048, 1024}, {4096, 1024},
};

/** Random per-core trace mixing the behavioural axes the schemes key
 *  off: sequential runs, strides, hot pages, temporal reuse of
 *  recent lines, and uniform noise. */
std::vector<trace::TraceRecord>
synthesizeTrace(Rng &rng, Addr base, std::uint64_t footprint_bytes,
                std::size_t records, double write_frac)
{
    const std::uint64_t lines = footprint_bytes / kLine;
    const std::uint64_t pages = footprint_bytes / 4096;

    std::vector<Addr> hot;
    const std::size_t num_hot = rng.range(4, 16);
    for (std::size_t i = 0; i < num_hot; ++i)
        hot.push_back(base + rng.below(pages ? pages : 1) * 4096);

    std::vector<Addr> recent;
    Addr cur = base + rng.below(lines) * kLine;

    std::vector<trace::TraceRecord> out;
    out.reserve(records);
    for (std::size_t i = 0; i < records; ++i) {
        const double roll = rng.real();
        Addr a;
        if (roll < 0.35) {
            a = cur + kLine; // sequential
        } else if (roll < 0.55) {
            a = hot[rng.below(hot.size())] +
                rng.below(4096 / kLine) * kLine; // hot page
        } else if (roll < 0.70) {
            a = cur + kLine * rng.range(2, 8); // stride
        } else if (roll < 0.85 && !recent.empty()) {
            a = recent[rng.below(recent.size())]; // temporal reuse
        } else {
            a = base + rng.below(lines) * kLine; // uniform noise
        }
        if (a < base || a >= base + footprint_bytes)
            a = base + (a % footprint_bytes) / kLine * kLine;
        cur = a;
        if (recent.size() < 64)
            recent.push_back(a);
        else
            recent[rng.below(recent.size())] = a;

        trace::TraceRecord rec;
        rec.gap = static_cast<std::uint32_t>(rng.below(8));
        rec.addr = a;
        rec.write = rng.chance(write_frac);
        out.push_back(rec);
    }
    return out;
}

/** Instruction budget that replays the longest per-core trace about
 *  once (file replay wraps, so shorter cores simply loop). */
std::uint64_t
budgetFor(const std::vector<std::vector<trace::TraceRecord>> &traces)
{
    std::uint64_t budget = 1;
    for (const auto &t : traces) {
        std::uint64_t sum = 0;
        for (const auto &r : t)
            sum += r.gap + 1;
        budget = std::max(budget, sum);
    }
    return budget;
}

} // anonymous namespace

FuzzCase
sampleCase(std::uint64_t case_seed, const FuzzOptions &opts)
{
    Rng rng(case_seed ? case_seed : 1);

    FuzzCase c;
    c.seed = case_seed;
    sim::MachineConfig cfg = sim::MachineConfig::preset(4);
    cfg.seed = case_seed;
    cfg.cores = static_cast<unsigned>(rng.range(1, 2));
    cfg.scheme = opts.scheme.empty()
                     ? fuzzableSchemes()[rng.below(
                           fuzzableSchemes().size())]
                     : sim::schemeFromName(opts.scheme);
    cfg.dramCacheBytes = 1ULL << rng.range(21, 23); // 2/4/8 MiB
    const Geometry geo =
        kGeometries[rng.below(std::size(kGeometries))];
    cfg.setBytes = geo.setBytes;
    cfg.bigBlockBytes = geo.bigBytes;
    cfg.locatorIndexBits = static_cast<unsigned>(rng.range(10, 15));
    cfg.predictorThreshold = static_cast<unsigned>(rng.range(2, 7));
    cfg.adaptWeight = 0.25 * static_cast<double>(rng.range(1, 4));
    cfg.commandLevelDram = rng.chance(0.5);
    cfg.stackedChannels = static_cast<unsigned>(rng.range(1, 2));
    cfg.stackedBanksPerChannel = rng.chance(0.5) ? 8 : 4;
    cfg.memBanksPerChannel = rng.chance(0.5) ? 16 : 8;
    cfg.mlp = static_cast<unsigned>(rng.range(2, 8));
    cfg.llscMshrs = 16u << rng.below(3); // 16/32/64
    cfg.llscBytes = rng.chance(0.5) ? 256 * kKiB : 1 * kMiB;
    switch (rng.below(3)) {
      case 1:
        cfg.prefetchPolicy = cache::PrefetchPolicy::Normal;
        break;
      case 2:
        cfg.prefetchPolicy = cache::PrefetchPolicy::Bypass;
        break;
      default:
        cfg.prefetchPolicy = cache::PrefetchPolicy::Off;
        break;
    }
    cfg.prefetchDegree = static_cast<unsigned>(rng.range(1, 2));
    cfg.warmupInstrPerCore = 0;
    c.cfg = cfg;

    const std::size_t records =
        static_cast<std::size_t>(rng.range(150, 800));
    const std::uint64_t footprint = 1ULL << rng.range(20, 24);
    const double write_frac = 0.1 + 0.4 * rng.real();
    for (unsigned core = 0; core < cfg.cores; ++core) {
        const Addr base = static_cast<Addr>(core) << 32;
        c.traces.push_back(synthesizeTrace(rng, base, footprint,
                                           records, write_frac));
    }
    return c;
}

std::string
runCase(const FuzzCase &c, const sim::CheckConfig &check,
        const std::string &tmp_dir)
{
    bmc_assert(!c.traces.empty() && c.traces.size() == c.cfg.cores,
               "fuzz case needs one trace per core");

    // Unique scratch names: concurrent cases (and shrink attempts of
    // the same seed) must never share files.
    static std::atomic<std::uint64_t> salt{0};
    const std::uint64_t tag = salt.fetch_add(1);

    std::vector<std::string> paths;
    std::string err;
    {
        ScopedThrowErrors throw_errors;
        try {
            std::vector<std::string> programs;
            for (std::size_t core = 0; core < c.traces.size();
                 ++core) {
                std::string path = strfmt(
                    "%s/bmcfuzz-%016llx-%llu-core%zu.bmct",
                    tmp_dir.c_str(),
                    static_cast<unsigned long long>(c.seed),
                    static_cast<unsigned long long>(tag), core);
                trace::TraceWriter writer(path);
                paths.push_back(path);
                for (const auto &rec : c.traces[core])
                    writer.append(rec);
                writer.close();
                programs.push_back("file:" + path);
            }

            sim::MachineConfig cfg = c.cfg;
            cfg.instrPerCore = budgetFor(c.traces);
            cfg.warmupInstrPerCore = 0;
            sim::System system(cfg, programs);
            system.enableChecks(check);
            system.run();
        } catch (const std::exception &e) {
            err = e.what();
        }
    }
    for (const std::string &path : paths)
        std::remove(path.c_str());
    return err;
}

FuzzCase
shrinkCase(const FuzzCase &c, const sim::CheckConfig &check,
           const std::string &tmp_dir, std::size_t max_records)
{
    FuzzCase cur = c;
    // Every probe is a full simulation; the attempt cap bounds the
    // shrink cost on stubborn cases. Chunks halve from half a trace
    // down to single records.
    std::size_t attempts = 0;
    constexpr std::size_t kMaxAttempts = 400;

    std::size_t chunk =
        std::max<std::size_t>(1, cur.totalRecords() / 2);
    while (chunk >= 1 && attempts < kMaxAttempts &&
           cur.totalRecords() > max_records) {
        bool removed = false;
        for (std::size_t core = 0;
             core < cur.traces.size() && attempts < kMaxAttempts;
             ++core) {
            std::size_t i = 0;
            while (i < cur.traces[core].size() &&
                   attempts < kMaxAttempts) {
                const std::size_t len =
                    std::min(chunk, cur.traces[core].size() - i);
                // Keep at least one record per core so the replay
                // file stays well-formed.
                if (cur.traces[core].size() - len < 1) {
                    i += len;
                    continue;
                }
                FuzzCase cand = cur;
                auto &tr = cand.traces[core];
                tr.erase(
                    tr.begin() + static_cast<std::ptrdiff_t>(i),
                    tr.begin() +
                        static_cast<std::ptrdiff_t>(i + len));
                ++attempts;
                if (!runCase(cand, check, tmp_dir).empty()) {
                    cur = std::move(cand);
                    removed = true;
                } else {
                    i += len;
                }
            }
        }
        if (!removed)
            chunk /= 2;
    }
    return cur;
}

void
saveRepro(const FuzzCase &c, const std::string &note,
          const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        bmc_fatal("cannot write repro file %s", path.c_str());
    std::fprintf(f, "bmcfuzz-repro v1\n");
    if (!note.empty()) {
        // Keep the note single-line: '#' only protects one line.
        std::string one = note;
        std::replace(one.begin(), one.end(), '\n', ' ');
        std::fprintf(f, "# %s\n", one.c_str());
    }
    const sim::MachineConfig &m = c.cfg;
    std::fprintf(f, "seed %llu\n",
                 static_cast<unsigned long long>(c.seed));
    std::fprintf(f, "scheme %s\n", sim::schemeName(m.scheme));
    std::fprintf(f, "cache_bytes %llu\n",
                 static_cast<unsigned long long>(m.dramCacheBytes));
    std::fprintf(f, "set_bytes %u\n", m.setBytes);
    std::fprintf(f, "big_bytes %u\n", m.bigBlockBytes);
    std::fprintf(f, "locator_bits %u\n", m.locatorIndexBits);
    std::fprintf(f, "threshold %u\n", m.predictorThreshold);
    std::fprintf(f, "weight %.6f\n", m.adaptWeight);
    std::fprintf(f, "command_dram %d\n", m.commandLevelDram ? 1 : 0);
    std::fprintf(f, "channels %u\n", m.stackedChannels);
    std::fprintf(f, "banks %u\n", m.stackedBanksPerChannel);
    std::fprintf(f, "mem_banks %u\n", m.memBanksPerChannel);
    std::fprintf(f, "mlp %u\n", m.mlp);
    std::fprintf(f, "llsc_bytes %llu\n",
                 static_cast<unsigned long long>(m.llscBytes));
    std::fprintf(f, "llsc_mshrs %u\n", m.llscMshrs);
    std::fprintf(
        f, "prefetch %s\n",
        m.prefetchPolicy == cache::PrefetchPolicy::Normal ? "normal"
        : m.prefetchPolicy == cache::PrefetchPolicy::Bypass
            ? "bypass"
            : "off");
    std::fprintf(f, "prefetch_degree %u\n", m.prefetchDegree);
    for (std::size_t core = 0; core < c.traces.size(); ++core) {
        std::fprintf(f, "trace %zu %zu\n", core,
                     c.traces[core].size());
        for (const auto &r : c.traces[core]) {
            std::fprintf(f, "%u %llx %d\n", r.gap,
                         static_cast<unsigned long long>(r.addr),
                         r.write ? 1 : 0);
        }
    }
    std::fprintf(f, "end\n");
    std::fclose(f);
}

FuzzCase
loadRepro(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        bmc_fatal("cannot open repro file %s", path.c_str());
    std::string line;
    if (!std::getline(in, line) || line != "bmcfuzz-repro v1")
        bmc_fatal("%s: not a bmcfuzz repro file", path.c_str());

    FuzzCase c;
    c.cfg = sim::MachineConfig::preset(4);
    c.cfg.warmupInstrPerCore = 0;
    bool saw_end = false;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "end") {
            saw_end = true;
            break;
        } else if (key == "seed") {
            ls >> c.seed;
            c.cfg.seed = c.seed;
        } else if (key == "scheme") {
            std::string name;
            ls >> name;
            c.cfg.scheme = sim::schemeFromName(name);
        } else if (key == "cache_bytes") {
            ls >> c.cfg.dramCacheBytes;
        } else if (key == "set_bytes") {
            ls >> c.cfg.setBytes;
        } else if (key == "big_bytes") {
            ls >> c.cfg.bigBlockBytes;
        } else if (key == "locator_bits") {
            ls >> c.cfg.locatorIndexBits;
        } else if (key == "threshold") {
            ls >> c.cfg.predictorThreshold;
        } else if (key == "weight") {
            ls >> c.cfg.adaptWeight;
        } else if (key == "command_dram") {
            int v = 0;
            ls >> v;
            c.cfg.commandLevelDram = v != 0;
        } else if (key == "channels") {
            ls >> c.cfg.stackedChannels;
        } else if (key == "banks") {
            ls >> c.cfg.stackedBanksPerChannel;
        } else if (key == "mem_banks") {
            ls >> c.cfg.memBanksPerChannel;
        } else if (key == "mlp") {
            ls >> c.cfg.mlp;
        } else if (key == "llsc_bytes") {
            ls >> c.cfg.llscBytes;
        } else if (key == "llsc_mshrs") {
            ls >> c.cfg.llscMshrs;
        } else if (key == "prefetch") {
            std::string name;
            ls >> name;
            c.cfg.prefetchPolicy =
                name == "normal"   ? cache::PrefetchPolicy::Normal
                : name == "bypass" ? cache::PrefetchPolicy::Bypass
                                   : cache::PrefetchPolicy::Off;
        } else if (key == "prefetch_degree") {
            ls >> c.cfg.prefetchDegree;
        } else if (key == "trace") {
            std::size_t core = 0, count = 0;
            ls >> core >> count;
            if (core != c.traces.size())
                bmc_fatal("%s: trace sections out of order",
                          path.c_str());
            std::vector<trace::TraceRecord> recs;
            recs.reserve(count);
            for (std::size_t i = 0; i < count; ++i) {
                if (!std::getline(in, line))
                    bmc_fatal("%s: truncated trace %zu",
                              path.c_str(), core);
                std::istringstream rs(line);
                trace::TraceRecord rec;
                unsigned long long a = 0;
                int w = 0;
                rs >> rec.gap >> std::hex >> a >> std::dec >> w;
                if (rs.fail())
                    bmc_fatal("%s: bad record '%s'", path.c_str(),
                              line.c_str());
                rec.addr = a;
                rec.write = w != 0;
                recs.push_back(rec);
            }
            c.traces.push_back(std::move(recs));
        } else {
            bmc_fatal("%s: unknown repro key '%s'", path.c_str(),
                      key.c_str());
        }
    }
    if (!saw_end)
        bmc_fatal("%s: missing 'end' marker", path.c_str());
    if (c.traces.empty())
        bmc_fatal("%s: repro has no traces", path.c_str());
    c.cfg.cores = static_cast<unsigned>(c.traces.size());
    return c;
}

FuzzReport
runFuzz(const FuzzOptions &opts, const FuzzProgress &progress)
{
    FuzzReport report;
    report.casesRun = opts.seeds;

    std::mutex mu;
    std::uint64_t done = 0;
    parallelFor(opts.threads, opts.seeds, [&](std::size_t i) {
        const std::uint64_t case_seed =
            sim::deriveRunSeed(opts.baseSeed, i);
        FuzzCase c = sampleCase(case_seed, opts);
        const std::string err = runCase(c, opts.check, opts.tmpDir);

        FuzzFailure fail;
        const bool failed = !err.empty();
        if (failed) {
            fail.seed = case_seed;
            fail.error = err;
            if (opts.shrink) {
                c = shrinkCase(c, opts.check, opts.tmpDir,
                               opts.maxReproRecords);
            }
            fail.records = c.totalRecords();
            if (!opts.reproDir.empty()) {
                fail.reproPath = strfmt(
                    "%s/seed%020llu.repro", opts.reproDir.c_str(),
                    static_cast<unsigned long long>(case_seed));
                saveRepro(c, err, fail.reproPath);
            }
        }

        std::lock_guard<std::mutex> lock(mu);
        ++done;
        if (failed)
            report.failures.push_back(fail);
        if (progress)
            progress(done, opts.seeds, failed ? &fail : nullptr);
    });

    std::sort(report.failures.begin(), report.failures.end(),
              [](const FuzzFailure &a, const FuzzFailure &b) {
                  return a.seed < b.seed;
              });
    return report;
}

} // namespace bmc::check
