#include "check/shadow_checker.hh"

#include "cache/mshr.hh"
#include "common/logging.hh"

namespace bmc::check
{

namespace
{

constexpr std::uint64_t kLineShift = 6;
constexpr std::uint64_t kRegionShift = 12;
constexpr std::uint64_t kLineBytes = 1ULL << kLineShift;

} // anonymous namespace

ShadowChecker::ShadowChecker(const dramcache::DramCacheOrg &org,
                             const cache::MshrFile *mshrs,
                             std::uint64_t audit_every)
    : org_(org), mshrs_(mshrs),
      auditEvery_(audit_every ? audit_every : 1024)
{
}

void
ShadowChecker::fail(Addr addr, const std::string &what) const
{
    bmc_fatal("shadow checker: %s [org=%s addr=%llx access#%llu]",
              what.c_str(), org_.name().c_str(),
              static_cast<unsigned long long>(addr),
              static_cast<unsigned long long>(checked_));
}

void
ShadowChecker::runAudit() const
{
    std::string why;
    if (!org_.auditInvariants(&why)) {
        bmc_fatal("shadow checker: structural audit failed: %s "
                  "[org=%s access#%llu]",
                  why.c_str(), org_.name().c_str(),
                  static_cast<unsigned long long>(checked_));
    }
    ++audits_;
}

void
ShadowChecker::onAccess(Addr addr, bool is_write, bool is_prefetch,
                        const dramcache::LookupResult &r)
{
    (void)is_prefetch;
    const std::uint64_t line = addr >> kLineShift;
    const std::uint64_t region = addr >> kRegionShift;

    // A hit requires a prior fill, and every fill stays inside the
    // naturally aligned block (<= 4 KB) around some earlier access:
    // a hit in a never-touched 4 KB region means the tag store
    // fabricated residency.
    if (r.hit && !touchedRegions_.count(region))
        fail(addr, "hit in a never-accessed 4 KB region");
    touchedRegions_.insert(region);

    // Every dirty byte pushed off-chip must correspond to a line the
    // shadow saw dirtied by a write; a clean-line writeback means
    // dirty-mask corruption (and silent write amplification).
    for (const auto &wb : r.fill.writebacks) {
        if (wb.addr % kLineBytes != 0 || wb.bytes % kLineBytes != 0 ||
            wb.bytes == 0) {
            fail(wb.addr,
                 strfmt("misaligned writeback transfer (%u bytes)",
                        wb.bytes));
        }
        for (std::uint64_t off = 0; off < wb.bytes;
             off += kLineBytes) {
            const std::uint64_t wline =
                (wb.addr + off) >> kLineShift;
            if (!dirtyLines_.erase(wline)) {
                fail(wb.addr + off,
                     "writeback of a line the shadow never saw "
                     "dirtied");
            }
        }
    }

    // Residency: a non-bypassed access ends with the 64 B line
    // cached, whatever the organization (hit, or miss + fill).
    if (!r.fill.bypass && !org_.probe(addr)) {
        fail(addr, r.hit ? "hit but probe() reports non-resident"
                         : "filled line not resident after miss");
    }
    if (is_write && !r.fill.bypass)
        dirtyLines_.insert(line);

    // MSHR conservation: every primary miss is either outstanding or
    // completed -- allocations and completions must balance.
    if (mshrs_) {
        const std::uint64_t primary = mshrs_->primaries();
        const std::uint64_t done = mshrs_->completions();
        const std::uint64_t live = mshrs_->size();
        if (primary != done + live) {
            fail(addr, strfmt("MSHR imbalance: primaries=%llu != "
                              "completions=%llu + outstanding=%llu",
                              static_cast<unsigned long long>(
                                  primary),
                              static_cast<unsigned long long>(done),
                              static_cast<unsigned long long>(
                                  live)));
        }
    }

    ++checked_;
    if (checked_ % auditEvery_ == 0)
        runAudit();
}

void
ShadowChecker::seedLine(Addr addr, bool dirty)
{
    touchedRegions_.insert(addr >> kRegionShift);
    if (dirty)
        dirtyLines_.insert(addr >> kLineShift);
}

void
ShadowChecker::finish() const
{
    runAudit();
}

} // namespace bmc::check
