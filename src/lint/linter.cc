#include "lint/linter.hh"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

#include "common/logging.hh"
#include "lint/cpp_model.hh"
#include "lint/schema_pins.hh"
#include "lint/source_view.hh"

namespace bmc::lint
{

namespace
{

// ------------------------------------------------------- scoping

/** Directories whose code defines simulated state (or, for
 *  src/serve/, must reproduce it bit-identically): wall time and
 *  unseeded randomness are banned outright here. The serve daemon
 *  takes its timing through common/wallclock.hh only. */
constexpr const char *kTimingDirs[] = {
    "src/sim/",
    "src/dram/",
    "src/dramcache/",
    "src/cache/",
    "src/serve/",
};

/** Files on the event hot path: allocation is pooled by design, so
 *  naked new/malloc needs an explicit justification. */
constexpr const char *kEventPathFiles[] = {
    "src/common/event_queue.hh",
    "src/common/event_queue.cc",
    "src/common/inline_function.hh",
    "src/dram/channel.cc",
    "src/dram/channel.hh",
    "src/dram/command_channel.cc",
    "src/dram/command_channel.hh",
    "src/sim/dramcache_controller.cc",
    "src/cache/mshr.cc",
    "src/cache/mshr.hh",
};

/** The curated-stats pair checked by stats-printed. */
constexpr const char *kStatsDecl = "src/sim/metrics.hh";
constexpr const char *kStatsPrinter = "src/sim/metrics.cc";

/** Where the checkpoint schema pin lives (ckpt-versioned). */
constexpr const char *kCkptPin = "src/sim/checkpoint.hh";

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
inTimingDirs(const std::string &relpath)
{
    for (const char *dir : kTimingDirs)
        if (startsWith(relpath, dir))
            return true;
    return false;
}

bool
isEventPathFile(const std::string &relpath)
{
    for (const char *f : kEventPathFiles)
        if (relpath == f)
            return true;
    return false;
}

// Lexical preprocessing (SourceView), suppressions and the
// unordered-container name scan live in source_view.{hh,cc}; the
// token-level model the semantic rules run over is cpp_model.{hh,cc}.

std::string relExtension(const std::string &relpath);

// ------------------------------------------------------- rules

struct RuleCtx
{
    const std::string &relpath;
    const SourceView &view;
    const SourceView *sibling; // may be null
    std::vector<Finding> &out;
};

void
emit(RuleCtx &ctx, std::size_t line0, const char *rule,
     std::string message)
{
    Finding f;
    f.file = ctx.relpath;
    f.line = static_cast<int>(line0) + 1;
    f.rule = rule;
    f.message = std::move(message);
    ctx.out.push_back(std::move(f));
}

void
scanPatterns(RuleCtx &ctx, const char *rule,
             const std::vector<std::pair<std::regex, const char *>>
                 &patterns)
{
    for (std::size_t i = 0; i < ctx.view.code.size(); ++i) {
        for (const auto &[re, what] : patterns) {
            if (std::regex_search(ctx.view.code[i], re))
                emit(ctx, i, rule, what);
        }
    }
}

void
ruleNoWallclock(RuleCtx &ctx)
{
    if (!inTimingDirs(ctx.relpath))
        return;
    static const std::vector<std::pair<std::regex, const char *>>
        patterns = {
            {std::regex(R"(std\s*::\s*chrono)"),
             "std::chrono in a timing-model directory; wall time "
             "must not reach simulated state (route telemetry "
             "through common/wallclock.hh)"},
            {std::regex(R"((^|[^\w.>])time\s*\()"),
             "time() in a timing-model directory; simulated time is "
             "the event queue's now()"},
            {std::regex(
                 R"(\b(gettimeofday|clock_gettime|clock)\s*\()"),
             "wall-clock call in a timing-model directory"},
        };
    scanPatterns(ctx, "no-wallclock", patterns);
}

void
ruleNoUnseededRand(RuleCtx &ctx)
{
    if (!inTimingDirs(ctx.relpath))
        return;
    static const std::vector<std::pair<std::regex, const char *>>
        patterns = {
            {std::regex(R"((^|[^\w])s?rand\s*\()"),
             "C rand()/srand() in a timing-model directory; use the "
             "seeded xoshiro streams (common/rng.hh)"},
            {std::regex(R"(\brandom_device\b)"),
             "std::random_device is non-deterministic; derive seeds "
             "with sim::deriveRunSeed instead"},
            {std::regex(R"(\bdefault_random_engine\b)"),
             "default_random_engine has unspecified, per-platform "
             "behaviour; use the seeded xoshiro streams"},
        };
    scanPatterns(ctx, "no-unseeded-rand", patterns);
}

void
ruleNoUnorderedIter(RuleCtx &ctx)
{
    // Only files that serialize JSON/JSONL can leak iteration order
    // into output the determinism tests diff.
    bool writes_json = false;
    for (const std::string &line : ctx.view.raw) {
        auto lower = line;
        std::transform(lower.begin(), lower.end(), lower.begin(),
                       [](unsigned char c) {
                           return static_cast<char>(
                               std::tolower(c));
                       });
        if (lower.find("json") != std::string::npos) {
            writes_json = true;
            break;
        }
    }
    if (!writes_json)
        return;

    std::set<std::string> names = unorderedNames(ctx.view);
    if (ctx.sibling) {
        const auto sib = unorderedNames(*ctx.sibling);
        names.insert(sib.begin(), sib.end());
    }
    if (names.empty())
        return;

    for (std::size_t i = 0; i < ctx.view.code.size(); ++i) {
        const std::string &line = ctx.view.code[i];
        std::smatch m;
        static const std::regex rangeFor(
            R"(for\s*\([^;()]*:\s*\*?\s*(?:this\s*->\s*)?([A-Za-z_]\w*)\s*\))");
        if (std::regex_search(line, m, rangeFor) &&
            names.count(m[1].str())) {
            emit(ctx, i, "no-unordered-iter",
                 "range-for over unordered container '" +
                     m[1].str() +
                     "' in a JSON-emitting file; iteration order is "
                     "run-dependent and breaks -jN bit-identity "
                     "(copy into a sorted vector first)");
            continue;
        }
        static const std::regex beginCall(
            R"(([A-Za-z_]\w*)\s*\.\s*c?begin\s*\()");
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            beginCall);
             it != std::sregex_iterator(); ++it) {
            if (names.count((*it)[1].str())) {
                emit(ctx, i, "no-unordered-iter",
                     "iterator over unordered container '" +
                         (*it)[1].str() +
                         "' in a JSON-emitting file; iteration order "
                         "is run-dependent");
            }
        }
    }
}

void
ruleNoNakedNew(RuleCtx &ctx)
{
    if (!isEventPathFile(ctx.relpath))
        return;
    static const std::vector<std::pair<std::regex, const char *>>
        patterns = {
            // `new T` flags; placement `new (addr)` does not (it
            // constructs into pooled storage, which is the point).
            {std::regex(R"((^|[^:\w])new\s+[A-Za-z_])"),
             "naked new in an event-path file; steady-state event "
             "code recycles pooled nodes -- box explicitly via an "
             "owning smart pointer or justify the allocation"},
            {std::regex(R"(\b(malloc|calloc|realloc)\s*\()"),
             "malloc-family call in an event-path file; use the "
             "pooled allocators"},
        };
    scanPatterns(ctx, "no-naked-new", patterns);
}

std::string
expectedGuard(const std::string &relpath)
{
    std::string p = relpath;
    if (startsWith(p, "src/"))
        p = p.substr(4);
    std::string guard = "BMC_";
    for (const char c : p) {
        if (c == '/' || c == '.' || c == '-')
            guard += '_';
        else
            guard += static_cast<char>(
                std::toupper(static_cast<unsigned char>(c)));
    }
    return guard;
}

void
ruleHeaderGuard(RuleCtx &ctx)
{
    if (relExtension(ctx.relpath) != ".hh")
        return;

    const std::string want = expectedGuard(ctx.relpath);
    static const std::regex pragmaOnce(R"(^\s*#\s*pragma\s+once\b)");
    static const std::regex ifndefRe(
        R"(^\s*#\s*ifndef\s+([A-Za-z_]\w*))");
    static const std::regex defineRe(
        R"(^\s*#\s*define\s+([A-Za-z_]\w*))");

    std::string guard;
    std::size_t guardLine = 0;
    bool sawDefine = false;
    for (std::size_t i = 0; i < ctx.view.code.size(); ++i) {
        const std::string &line = ctx.view.code[i];
        std::smatch m;
        if (std::regex_search(line, m, pragmaOnce)) {
            emit(ctx, i, "header-guard",
                 "#pragma once is inconsistent with this tree's "
                 "include-guard convention; use #ifndef " +
                     want);
            return;
        }
        if (guard.empty()) {
            if (std::regex_search(line, m, ifndefRe)) {
                guard = m[1].str();
                guardLine = i;
            }
        } else if (!sawDefine &&
                   std::regex_search(line, m, defineRe)) {
            if (m[1].str() != guard) {
                emit(ctx, i, "header-guard",
                     "#define does not match the #ifndef guard '" +
                         guard + "'");
                return;
            }
            sawDefine = true;
        }
    }
    if (guard.empty()) {
        emit(ctx, 0, "header-guard",
             "header has no include guard; expected #ifndef " + want);
        return;
    }
    if (!sawDefine) {
        emit(ctx, guardLine, "header-guard",
             "#ifndef " + guard + " has no matching #define");
        return;
    }
    if (guard != want) {
        emit(ctx, guardLine, "header-guard",
             "include guard '" + guard +
                 "' does not match the path convention; expected " +
                 want);
    }
}

std::string
relExtension(const std::string &relpath)
{
    const auto dot = relpath.find_last_of('.');
    return dot == std::string::npos ? "" : relpath.substr(dot);
}

void
ruleSchemeRegistered(RuleCtx &ctx)
{
    if (!startsWith(ctx.relpath, "src/dramcache/") ||
        relExtension(ctx.relpath) != ".cc")
        return;

    static const std::regex derives(R"(public\s+DramCacheOrg\b)");
    static const std::regex registers(
        R"(\bBMC_REGISTER_SCHEMES\s*\()");

    const auto firstMatch = [](const SourceView &v,
                               const std::regex &re) -> int {
        for (std::size_t i = 0; i < v.code.size(); ++i)
            if (std::regex_search(v.code[i], re))
                return static_cast<int>(i);
        return -1;
    };

    int line0 = firstMatch(ctx.view, derives);
    if (line0 < 0) {
        // The class declaration usually lives in the sibling header;
        // anchor the finding at the top of the .cc in that case.
        if (!ctx.sibling || firstMatch(*ctx.sibling, derives) < 0)
            return; // no organization defined here
        line0 = 0;
    }
    if (firstMatch(ctx.view, registers) >= 0)
        return;

    emit(ctx, static_cast<std::size_t>(line0), "scheme-registered",
         "DRAM cache organization is never registered with the "
         "scheme registry; add BMC_REGISTER_SCHEMES(...) to this "
         "file so bmcsim/bmcsweep/bmcfuzz and the registry-driven "
         "tests can reach it");
}

// --------------------------------------------- ckpt fingerprint

/** Render a 64-bit hash the way checkpoint.hh pins it. */
std::string
hashHex(std::uint64_t h)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

// ------------------------------------------- semantic: shared bits

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

/** FNV-1a accumulator, same parameters as the checkpoint checksum. */
struct Fnv
{
    std::uint64_t h = 14695981039346656037ULL;

    void
    feed(const std::string &s)
    {
        for (const char c : s) {
            h ^= static_cast<unsigned char>(c);
            h *= 1099511628211ULL;
        }
    }
};

/** The characters of line @p li that live inside string literals:
 *  text keeps them, code blanks them. Everything else is blanked,
 *  so patterns like `%p` or `\"key\":` can never match plain code. */
std::string
stringOnly(const SourceView &v, std::size_t li)
{
    const std::string &code = v.code[li];
    const std::string &text = v.text[li];
    std::string out(text.size(), ' ');
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (i >= code.size() || code[i] == ' ')
            out[i] = text[i];
    }
    // comments are blank in both views already; blanks stay blanks
    for (std::size_t i = 0; i < out.size(); ++i)
        if (out[i] == '\t')
            out[i] = ' ';
    return out;
}

/** True when the def's own raw line (or the one above) carries the
 *  given bmclint marker comment. */
bool
hasMarker(const FileModel &fm, int line1, const char *marker)
{
    for (int l : {line1 - 1, line1 - 2}) {
        if (l < 0 || l >= static_cast<int>(fm.view.raw.size()))
            continue;
        if (fm.view.raw[static_cast<std::size_t>(l)].find(marker) !=
            std::string::npos)
            return true;
    }
    return false;
}

// ---------------------------------------------------- det-taint

/** Audited serializer entry points: definition name + file prefix.
 *  `// bmclint:sink` on a definition extends the set in place. */
struct TaintSinkSpec
{
    const char *name;
    const char *filePrefix;
};

constexpr TaintSinkSpec kTaintSinks[] = {
    {"statsToJson", "src/sim/metrics.cc"},
    {"runResultToJsonLine", "src/sim/sweep.cc"},
    {"writeRow", "src/sim/epoch_sampler.cc"},
    {"completeEvent", "src/common/chrome_trace"},
    {"instantEvent", "src/common/chrome_trace"},
    {"emitPrefix", "src/common/chrome_trace"},
    {"rowFromScanned", "src/sim/catalog.cc"},
    {"writeCatalogIndex", "src/sim/catalog.cc"},
    {"rebuildCatalogIndex", "src/sim/catalog.cc"},
    {"frameCheckpoint", "src/sim/checkpoint.cc"},
    {"flushRow", "src/serve/server.cc"},
    {"append", "src/serve/journal.cc"},
    {"jobSpecToJson", "src/serve/jobspec.cc"},
    {"fuzzRowJson", "src/serve/jobspec.cc"},
    {"toJson", "src/common/profiler.cc"},
};

/** A reason a definition is taint-carrying by itself. */
struct TaintMark
{
    std::string label; //!< human-readable source description
    std::string key;   //!< dedupe key per (sink, source kind)
    int line = 0;      //!< 1-based line of the evidence
};

/** Direct (intra-body) taint marks of @p def. */
std::vector<TaintMark>
directTaintMarks(const CppModel &model, const FunctionDef &def)
{
    std::vector<TaintMark> marks;
    const FileModel *fm = model.file(def.file);
    if (!fm)
        return marks;

    // the audited wall-clock entry points
    if ((def.name == "wallNow" || def.name == "wallSecondsSince") &&
        endsWith(def.file, "common/wallclock.hh")) {
        marks.push_back({def.name + " (common/wallclock.hh)",
                         "wallclock", def.line});
        return marks; // the source itself; no need to scan its body
    }
    if (hasMarker(*fm, def.line, "bmclint:taint-source")) {
        marks.push_back({"marked source '" + def.qualified + "'",
                         "marker:" + def.qualified, def.line});
        return marks;
    }

    static const std::regex randRe(
        R"(\b(random_device|default_random_engine)\b)");
    static const std::regex ptrCastRe(
        R"(reinterpret_cast\s*<[^;>]*uintptr_t)");
    static const std::regex rangeFor(
        R"(for\s*\([^;()]*:\s*\*?\s*(?:this\s*->\s*)?([A-Za-z_]\w*)\s*\))");
    static const std::regex beginCall(
        R"(([A-Za-z_]\w*)\s*\.\s*c?begin\s*\()");

    // unordered-container names visible from this file (+ sibling)
    std::set<std::string> unordered = unorderedNames(fm->view);
    if (endsWith(def.file, ".cc")) {
        const std::string hh =
            def.file.substr(0, def.file.size() - 3) + ".hh";
        if (const FileModel *sib = model.file(hh)) {
            const auto more = unorderedNames(sib->view);
            unordered.insert(more.begin(), more.end());
        }
    }

    const int lo = std::max(def.bodyLine, 1);
    const int hi = std::min(def.endLine,
                            static_cast<int>(fm->view.code.size()));
    for (int l = lo; l <= hi; ++l) {
        const std::size_t i = static_cast<std::size_t>(l - 1);
        const std::string &code = fm->view.code[i];
        std::smatch m;
        if (std::regex_search(code, m, randRe)) {
            marks.push_back(
                {m[1].str() + " in " + def.qualified,
                 "rand", l});
        }
        if (std::regex_search(code, ptrCastRe)) {
            marks.push_back(
                {"pointer-to-integer cast in " + def.qualified,
                 "ptr", l});
        }
        if (stringOnly(fm->view, i).find("%p") !=
            std::string::npos) {
            marks.push_back(
                {"%p pointer formatting in " + def.qualified,
                 "ptr", l});
        }
        if (!unordered.empty()) {
            if (std::regex_search(code, m, rangeFor) &&
                unordered.count(m[1].str())) {
                marks.push_back(
                    {"iteration over unordered container '" +
                         m[1].str() + "' in " + def.qualified,
                     "unordered:" + m[1].str(), l});
            }
            for (auto it = std::sregex_iterator(
                     code.begin(), code.end(), beginCall);
                 it != std::sregex_iterator(); ++it) {
                if (unordered.count((*it)[1].str())) {
                    marks.push_back(
                        {"iteration over unordered container '" +
                             (*it)[1].str() + "' in " +
                             def.qualified,
                         "unordered:" + (*it)[1].str(), l});
                }
            }
        }
    }
    return marks;
}

/** Non-deterministic library calls the model cannot resolve to a
 *  definition. Returns a source label, or "" when benign. */
std::string
intrinsicTaintSource(const CallSite &cs)
{
    static const std::set<std::string> always = {
        "rand",       "srand",        "drand48", "random",
        "gettimeofday", "clock_gettime", "localtime", "gmtime",
        "timespec_get",
    };
    if (always.count(cs.name))
        return cs.name + "()";
    if ((cs.name == "time" || cs.name == "clock") &&
        !cs.hasReceiver &&
        (cs.qualifier.empty() || cs.qualifier == "std"))
        return cs.name + "()";
    if (cs.name == "now" &&
        (cs.qualifier.find("chrono") != std::string::npos ||
         cs.qualifier.find("steady_clock") != std::string::npos ||
         cs.qualifier.find("system_clock") != std::string::npos ||
         cs.qualifier.find("high_resolution_clock") !=
             std::string::npos))
        return cs.qualifier + "::now()";
    return "";
}

// ---------------------------------------------------- lock-order

/** One lock event inside a function body, in line order. */
struct LockEvent
{
    enum Kind
    {
        GuardDecl, //!< lock_guard/unique_lock/... declaration
        Manual,    //!< expr.lock() / expr.unlock()
        Call,      //!< a call site (index into def.calls)
    };
    Kind kind = GuardDecl;
    int line = 0; //!< 1-based
    // GuardDecl
    std::string var;
    std::vector<std::string> mutexes;
    bool engaged = true; //!< false for std::defer_lock
    // Manual
    std::string expr;
    bool isLock = true;
    // Call
    int callIdx = -1;
};

/** Normalize a mutex expression: drop spaces, `&`, `*`, `this->`;
 *  qualify a plain identifier with the definition's class so
 *  `jobsMutex_` means the same mutex in every Server method. */
std::string
normalizeMutexId(std::string expr, const FunctionDef &def)
{
    expr.erase(std::remove_if(expr.begin(), expr.end(),
                              [](unsigned char c) {
                                  return std::isspace(c) ||
                                         c == '&' || c == '*';
                              }),
               expr.end());
    if (expr.rfind("this->", 0) == 0)
        expr = expr.substr(6);
    if (expr.empty())
        return expr;
    const bool plain =
        expr.find('.') == std::string::npos &&
        expr.find("->") == std::string::npos &&
        expr.find("::") == std::string::npos;
    const auto sep = def.qualified.rfind("::");
    if (plain && sep != std::string::npos)
        expr = def.qualified.substr(0, sep) + "::" + expr;
    return expr;
}

/** std::lock tag types that modulate a guard's initial state. */
bool
isLockTag(const std::string &arg, bool &engaged)
{
    if (arg.find("defer_lock") != std::string::npos) {
        engaged = false;
        return true;
    }
    return arg.find("try_to_lock") != std::string::npos ||
           arg.find("adopt_lock") != std::string::npos;
}

/** Extract @p def's lock events (guard declarations spanning lines
 *  are handled by matching over the joined body). */
std::vector<LockEvent>
lockEvents(const CppModel &model, const FunctionDef &def)
{
    std::vector<LockEvent> events;
    const FileModel *fm = model.file(def.file);
    if (!fm)
        return events;

    const int lo = std::max(def.line, 1);
    const int hi = std::min(def.endLine,
                            static_cast<int>(fm->view.code.size()));

    // joined body with offsets -> line numbers
    std::string body;
    std::vector<int> lineAt; // per char, 1-based line
    for (int l = lo; l <= hi; ++l) {
        const std::string &line =
            fm->view.code[static_cast<std::size_t>(l - 1)];
        body += line;
        body += '\n';
        lineAt.insert(lineAt.end(), line.size() + 1, l);
    }

    static const std::regex guardRe(
        R"((?:std\s*::\s*)?(lock_guard|unique_lock|shared_lock|scoped_lock)\s*(?:<[^<>;]*>)?\s+([A-Za-z_]\w*)\s*([({]))");
    for (auto it = std::sregex_iterator(body.begin(), body.end(),
                                        guardRe);
         it != std::sregex_iterator(); ++it) {
        LockEvent ev;
        ev.kind = LockEvent::GuardDecl;
        ev.var = (*it)[2].str();
        ev.line = lineAt[static_cast<std::size_t>(it->position())];

        // collect the balanced argument list
        std::size_t pos = static_cast<std::size_t>(it->position() +
                                                   it->length());
        const char open = (*it)[3].str()[0];
        const char close = open == '(' ? ')' : '}';
        int depth = 1;
        std::string args;
        while (pos < body.size() && depth > 0) {
            const char c = body[pos];
            if (c == open)
                ++depth;
            else if (c == close)
                --depth;
            if (depth > 0)
                args += c;
            ++pos;
        }
        // split on top-level commas
        std::vector<std::string> parts;
        std::string cur;
        int d = 0;
        for (const char c : args) {
            if (c == '(' || c == '<' || c == '{')
                ++d;
            else if (c == ')' || c == '>' || c == '}')
                --d;
            if (c == ',' && d == 0) {
                parts.push_back(cur);
                cur.clear();
            } else {
                cur += c;
            }
        }
        if (!cur.empty())
            parts.push_back(cur);
        for (const std::string &p : parts) {
            if (isLockTag(p, ev.engaged))
                continue;
            const std::string id = normalizeMutexId(p, def);
            if (!id.empty() &&
                id.find('(') == std::string::npos)
                ev.mutexes.push_back(id);
        }
        if (!ev.mutexes.empty())
            events.push_back(std::move(ev));
    }

    static const std::regex manualRe(
        R"(([A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*)\s*\.\s*(lock|unlock)\s*\(\s*\))");
    for (auto it = std::sregex_iterator(body.begin(), body.end(),
                                        manualRe);
         it != std::sregex_iterator(); ++it) {
        LockEvent ev;
        ev.kind = LockEvent::Manual;
        ev.expr = (*it)[1].str();
        ev.isLock = (*it)[2].str() == "lock";
        ev.line = lineAt[static_cast<std::size_t>(it->position())];
        events.push_back(std::move(ev));
    }

    for (std::size_t ci = 0; ci < def.calls.size(); ++ci) {
        LockEvent ev;
        ev.kind = LockEvent::Call;
        ev.callIdx = static_cast<int>(ci);
        ev.line = def.calls[ci].line;
        events.push_back(std::move(ev));
    }

    std::stable_sort(events.begin(), events.end(),
                     [](const LockEvent &a, const LockEvent &b) {
                         if (a.line != b.line)
                             return a.line < b.line;
                         return a.kind < b.kind; // decls before calls
                     });
    return events;
}

/** Calls that park the thread; holding a lock across one starves
 *  every contender (the cv-wait family is exempted by the caller:
 *  waits release the lock while parked). */
bool
isBlockingCall(const std::string &name)
{
    static const std::set<std::string> blocking = {
        "wallSleep", "sleep_for", "sleep_until", "usleep",
        "nanosleep", "sleep",     "join",        "waitpid",
        "system",    "popen",     "pause",       "flock",
        "poll",      "select",    "accept",      "connect",
    };
    return blocking.count(name) != 0;
}

// ------------------------------------------------- tree walking

std::string
normalizeSlashes(std::string p)
{
    std::replace(p.begin(), p.end(), '\\', '/');
    return p;
}

bool
readFile(const std::filesystem::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

} // anonymous namespace

const std::vector<RuleInfo> &
ruleCatalog()
{
    static const std::vector<RuleInfo> rules = {
        {"no-wallclock",
         "wall-clock time sources in timing-model directories"},
        {"no-unseeded-rand",
         "unseeded randomness in timing-model directories"},
        {"no-unordered-iter",
         "unordered-container iteration in JSON-emitting files"},
        {"no-naked-new",
         "naked new/malloc in event-path files"},
        {"header-guard",
         "include guards must follow the BMC_<PATH>_HH convention"},
        {"stats-printed",
         "RunStats fields must be serialized by statsToJson"},
        {"scheme-registered",
         "DramCacheOrg subclasses must register with the scheme "
         "registry"},
        {"ckpt-versioned",
         "serialized-field changes must re-pin kCheckpointSchemaHash "
         "(and bump kCheckpointVersion)"},
        {"det-taint",
         "wall-clock/random/pointer/unordered values must not reach "
         "a serialization sink through any call path"},
        {"schema-drift",
         "emitted JSON keys / binio field sequences must match the "
         "pinned fingerprint, version constant and EXPERIMENTS.md "
         "registry row per format"},
        {"lock-order",
         "the static lock-acquisition graph must be cycle-free, with "
         "no blocking or opaque calls under a held lock"},
    };
    return rules;
}

bool
knownRule(const std::string &id)
{
    for (const RuleInfo &r : ruleCatalog())
        if (id == r.id)
            return true;
    return false;
}

// ==================================================== det-taint

std::vector<Finding>
lintDetTaint(const CppModel &model)
{
    const auto &funcs = model.functions();

    // sink set: the audited table plus `// bmclint:sink` markers
    std::vector<int> sinks;
    for (std::size_t i = 0; i < funcs.size(); ++i) {
        const FunctionDef &def = funcs[i];
        bool isSink = false;
        for (const TaintSinkSpec &s : kTaintSinks) {
            if (def.name == s.name &&
                def.file.rfind(s.filePrefix, 0) == 0) {
                isSink = true;
                break;
            }
        }
        if (!isSink) {
            const FileModel *fm = model.file(def.file);
            isSink = fm && hasMarker(*fm, def.line, "bmclint:sink");
        }
        if (isSink)
            sinks.push_back(static_cast<int>(i));
    }

    // direct-mark cache, filled lazily during the per-sink BFS
    std::map<int, std::vector<TaintMark>> markCache;
    const auto marksOf = [&](int d) -> const std::vector<TaintMark> & {
        auto it = markCache.find(d);
        if (it == markCache.end())
            it = markCache
                     .emplace(d, directTaintMarks(
                                     model,
                                     funcs[static_cast<std::size_t>(
                                         d)]))
                     .first;
        return it->second;
    };

    std::vector<Finding> findings;
    for (const int sinkIdx : sinks) {
        const FunctionDef &sink =
            funcs[static_cast<std::size_t>(sinkIdx)];

        // BFS from the sink along the call graph; shortest path to
        // each taint source wins, one finding per source kind.
        struct QEntry
        {
            int def;
            int parent;   //!< index into entries; -1 for the sink
            int callLine; //!< line of the call edge, in parent's file
            std::string via; //!< callee name as written
        };
        std::vector<QEntry> entries;
        std::set<int> visited;
        std::set<std::string> reported; // dedupe keys
        entries.push_back({sinkIdx, -1, 0, ""});
        visited.insert(sinkIdx);

        const auto chainOf = [&](int entryIdx,
                                 const std::string &srcLabel) {
            std::vector<std::string> chain; // source ... sink
            chain.push_back(srcLabel);
            for (int e = entryIdx; e >= 0; e = entries[static_cast<
                                               std::size_t>(e)]
                                               .parent)
                chain.push_back(
                    funcs[static_cast<std::size_t>(
                              entries[static_cast<std::size_t>(e)]
                                  .def)]
                        .qualified);
            return chain;
        };
        const auto report = [&](int entryIdx,
                                const std::string &srcLabel,
                                const std::string &dedupe,
                                int evidenceLine) {
            if (!reported.insert(dedupe).second)
                return;
            std::vector<std::string> chain =
                chainOf(entryIdx, srcLabel);
            int line = evidenceLine;
            // anchor at the sink's outgoing call when the path
            // leaves the sink, so a local bmclint:allow works
            int e = entryIdx;
            while (e >= 0) {
                const QEntry &qe =
                    entries[static_cast<std::size_t>(e)];
                if (qe.parent == -1)
                    break;
                if (entries[static_cast<std::size_t>(qe.parent)]
                        .parent == -1) {
                    line = qe.callLine;
                    break;
                }
                e = qe.parent;
            }
            if (model.suppressed(sink.file, line, "det-taint"))
                return;
            std::string path;
            for (std::size_t i = 0; i < chain.size(); ++i) {
                if (i)
                    path += " -> ";
                path += chain[i];
            }
            Finding f;
            f.file = sink.file;
            f.line = line;
            f.rule = "det-taint";
            f.message =
                "non-deterministic value can reach serializer '" +
                sink.qualified + "': " + path +
                "; route wall time through the telemetry side "
                "(common/wallclock.hh values must stop before "
                "serialization) or suppress with justification";
            f.path = std::move(chain);
            findings.push_back(std::move(f));
        };

        for (std::size_t qi = 0; qi < entries.size(); ++qi) {
            const QEntry cur = entries[qi];
            const FunctionDef &def =
                funcs[static_cast<std::size_t>(cur.def)];

            for (const TaintMark &mark : marksOf(cur.def)) {
                report(static_cast<int>(qi), mark.label,
                       mark.key, mark.line);
            }
            for (const CallSite &cs : def.calls) {
                const std::string intrinsic =
                    intrinsicTaintSource(cs);
                if (!intrinsic.empty()) {
                    report(static_cast<int>(qi), intrinsic,
                           "intrinsic:" + cs.name, cs.line);
                    continue;
                }
                for (const int callee : model.resolve(cs.name)) {
                    if (visited.insert(callee).second)
                        entries.push_back({callee,
                                           static_cast<int>(qi),
                                           cs.line, cs.name});
                }
            }
        }
    }
    return findings;
}

// ================================================== schema-drift

const std::vector<SchemaFormatSpec> &
schemaFormats()
{
    static const std::vector<SchemaFormatSpec> formats = {
        {"results-jsonl", false,
         {"src/sim/metrics.cc#statsToJson",
          "src/sim/sweep.cc#runResultToJsonLine",
          "src/common/profiler.cc#toJson"},
         "src/sim/metrics.hh",
         R"(kResultsSchemaVersion\s*=\s*(\d+))",
         "sim::kResultsSchemaVersion"},
        {"epoch-row", false,
         {"src/sim/epoch_sampler.cc#writeRow"},
         "src/sim/epoch_sampler.cc",
         R"(\\"schema_version\\":\s*(\d+))",
         "epoch time-series row"},
        {"trace-json", false,
         {"src/common/chrome_trace.cc"},
         "src/common/chrome_trace.cc",
         R"(\\"schema_version\\":\s*(\d+))",
         "lifecycle trace"},
        {"checkpoint", true,
         {"src/sim/checkpoint.cc"},
         "src/sim/checkpoint.hh",
         R"(kCheckpointVersion\s*=\s*(\d+))",
         "sim::kCheckpointVersion"},
        {"catalog-index", true,
         {"src/sim/catalog.cc"},
         "src/sim/catalog.hh",
         R"(kCatalogIndexVersion\s*=\s*(\d+))",
         "sim::kCatalogIndexVersion"},
        {"serve-protocol", false,
         {"src/serve/server.cc"},
         "src/serve/frame.hh",
         R"(kServeProtocolVersion\s*=\s*(\d+))",
         "serve::kServeProtocolVersion"},
        {"serve-jobspec", false,
         {"src/serve/jobspec.cc#jobSpecToJson"},
         "src/serve/jobspec.hh",
         R"(kJobSpecVersion\s*=\s*(\d+))",
         "serve::kJobSpecVersion"},
        {"serve-journal", true,
         {"src/serve/journal.cc"},
         "src/serve/journal.hh",
         R"(kServeJournalVersion\s*=\s*(\d+))",
         "serve::kServeJournalVersion"},
        {"serve-fuzz-row", false,
         {"src/serve/jobspec.cc#fuzzRowJson"},
         "src/serve/jobspec.hh",
         R"(kServeFuzzRowVersion\s*=\s*(\d+))",
         "serve::kServeFuzzRowVersion"},
    };
    return formats;
}

std::vector<SchemaPinData>
defaultSchemaPins()
{
    std::vector<SchemaPinData> pins;
    for (const SchemaPin &p : kSchemaPins)
        pins.push_back({p.format, p.version, p.fingerprint});
    return pins;
}

namespace
{

/** Append @p spec's extracted key/field sequence for @p sourceIdx
 *  (lines [lo, hi], 1-based) to @p seq. */
void
extractSchemaItems(const FileModel &fm, bool binio, int lo, int hi,
                   std::vector<std::string> &seq)
{
    static const std::regex fieldCall(
        R"((\.|->)\s*(u8|u16|u32|u64|f64|str|bytes)\s*\()");
    static const std::regex escKey(
        R"(\\"([A-Za-z_]\w*)\\"\s*:)");
    static const std::regex helperKey(
        R"re(\b(?:field|kv)\s*\(\s*"([A-Za-z_]\w*)")re");

    lo = std::max(lo, 1);
    hi = std::min(hi, static_cast<int>(fm.view.code.size()));
    for (int l = lo; l <= hi; ++l) {
        const std::size_t i = static_cast<std::size_t>(l - 1);
        if (binio) {
            const std::string &code = fm.view.code[i];
            for (auto it = std::sregex_iterator(
                     code.begin(), code.end(), fieldCall);
                 it != std::sregex_iterator(); ++it)
                seq.push_back((*it)[2].str());
            continue;
        }
        // JSON keys: escaped literals and helper-call keys, merged
        // in column order so the emitted sequence is the pin
        const std::string &text = fm.view.text[i];
        std::vector<std::pair<std::size_t, std::string>> found;
        for (auto it = std::sregex_iterator(text.begin(),
                                            text.end(), escKey);
             it != std::sregex_iterator(); ++it)
            found.emplace_back(
                static_cast<std::size_t>(it->position()),
                (*it)[1].str());
        for (auto it = std::sregex_iterator(text.begin(),
                                            text.end(), helperKey);
             it != std::sregex_iterator(); ++it)
            found.emplace_back(
                static_cast<std::size_t>(it->position()),
                (*it)[1].str());
        std::sort(found.begin(), found.end());
        for (auto &[pos, key] : found)
            seq.push_back(key);
    }
}

} // anonymous namespace

std::uint64_t
schemaFormatFingerprint(const CppModel &model,
                        const SchemaFormatSpec &spec)
{
    Fnv fnv;
    for (std::size_t si = 0; si < spec.sources.size(); ++si) {
        const std::string &src = spec.sources[si];
        const auto hash = src.find('#');
        const std::string path =
            hash == std::string::npos ? src : src.substr(0, hash);
        const FileModel *fm = model.file(path);
        if (!fm)
            continue; // lintSchemaDrift reports the missing source

        std::vector<std::string> seq;
        if (hash == std::string::npos) {
            extractSchemaItems(
                *fm, spec.binio, 1,
                static_cast<int>(fm->view.code.size()), seq);
        } else {
            const std::string func = src.substr(hash + 1);
            std::vector<int> defs = model.resolveIn(path, func);
            std::sort(defs.begin(), defs.end(),
                      [&](int a, int b) {
                          return model
                                     .functions()[static_cast<
                                         std::size_t>(a)]
                                     .line <
                                 model
                                     .functions()[static_cast<
                                         std::size_t>(b)]
                                     .line;
                      });
            for (const int d : defs) {
                const FunctionDef &def =
                    model.functions()[static_cast<std::size_t>(d)];
                extractSchemaItems(*fm, spec.binio, def.line,
                                   def.endLine, seq);
            }
        }
        for (const std::string &item : seq) {
            fnv.feed(std::to_string(si));
            fnv.feed(":");
            fnv.feed(item);
            fnv.feed("\n");
        }
    }
    return fnv.h;
}

std::vector<Finding>
lintSchemaDrift(const CppModel &model,
                const std::vector<SchemaFormatSpec> &formats,
                const std::vector<SchemaPinData> &pins,
                const std::string &experiments_md)
{
    std::vector<Finding> findings;
    const auto emitAt = [&](const std::string &file, int line,
                            std::string msg,
                            std::vector<std::string> path = {}) {
        if (model.suppressed(file, line, "schema-drift"))
            return;
        Finding f;
        f.file = file;
        f.line = line;
        f.rule = "schema-drift";
        f.message = std::move(msg);
        f.path = std::move(path);
        findings.push_back(std::move(f));
    };

    // A tree with none of the audited serializers (fixture trees in
    // tests, partial checkouts) has nothing to drift: bail before
    // reporting every format as missing.
    bool anyPresent = false;
    for (const SchemaFormatSpec &spec : formats) {
        if (model.file(spec.versionFile))
            anyPresent = true;
        for (const std::string &src : spec.sources)
            if (model.file(src.substr(0, src.find('#'))))
                anyPresent = true;
    }
    if (!anyPresent)
        return findings;

    // split the registry doc into lines once
    std::vector<std::string> docLines;
    {
        std::stringstream ss(experiments_md);
        std::string line;
        while (std::getline(ss, line))
            docLines.push_back(line);
    }

    for (const SchemaFormatSpec &spec : formats) {
        // --- extraction anchors must exist
        bool missing = false;
        for (const std::string &src : spec.sources) {
            const auto hash = src.find('#');
            const std::string path = hash == std::string::npos
                                         ? src
                                         : src.substr(0, hash);
            if (!model.file(path)) {
                emitAt(spec.versionFile, 0,
                       "schema source '" + path + "' for format '" +
                           spec.id +
                           "' is not in the model; update the "
                           "format table in src/lint/linter.cc");
                missing = true;
            } else if (hash != std::string::npos &&
                       model.resolveIn(path, src.substr(hash + 1))
                           .empty()) {
                emitAt(spec.versionFile, 0,
                       "serializer function '" +
                           src.substr(hash + 1) + "' for format '" +
                           spec.id + "' not found in " + path +
                           "; the extraction anchor went stale");
                missing = true;
            }
        }
        if (missing)
            continue;

        // --- in-code version constant
        const FileModel *vf = model.file(spec.versionFile);
        unsigned codeVersion = 0;
        int versionLine = 0;
        if (vf) {
            const std::regex re(spec.versionPattern);
            for (std::size_t i = 0; i < vf->view.text.size(); ++i) {
                std::smatch m;
                if (std::regex_search(vf->view.text[i], m, re)) {
                    codeVersion = static_cast<unsigned>(
                        std::stoul(m[1].str()));
                    versionLine = static_cast<int>(i) + 1;
                    break;
                }
            }
        }
        if (versionLine == 0) {
            emitAt(spec.versionFile, 0,
                   "version constant for format '" + spec.id +
                       "' not found (pattern " +
                       spec.versionPattern + ")");
            continue;
        }

        const std::uint64_t have =
            schemaFormatFingerprint(model, spec);

        // --- pin row
        const SchemaPinData *pin = nullptr;
        for (const SchemaPinData &p : pins)
            if (p.format == spec.id)
                pin = &p;
        if (!pin) {
            emitAt(spec.versionFile, versionLine,
                   "format '" + spec.id +
                       "' has no pin; add {\"" + spec.id + "\", " +
                       std::to_string(codeVersion) + ", " +
                       hashHex(have) +
                       "} to src/lint/schema_pins.hh");
            continue;
        }

        if (pin->fingerprint != have &&
            pin->version == codeVersion) {
            emitAt(spec.versionFile, versionLine,
                   "format '" + spec.id +
                       "' changed its emitted fields (fingerprint " +
                       hashHex(have) + ", pinned " +
                       hashHex(pin->fingerprint) +
                       ") without a version bump; bump the version "
                       "constant in " +
                       spec.versionFile +
                       ", re-pin src/lint/schema_pins.hh, and "
                       "update the EXPERIMENTS.md registry row",
                   {spec.id, hashHex(pin->fingerprint),
                    hashHex(have)});
        } else if (pin->fingerprint != have) {
            emitAt(spec.versionFile, versionLine,
                   "format '" + spec.id +
                       "' was re-versioned; re-pin its fingerprint "
                       "in src/lint/schema_pins.hh to " +
                       hashHex(have) + " (currently " +
                       hashHex(pin->fingerprint) + ")",
                   {spec.id, hashHex(pin->fingerprint),
                    hashHex(have)});
        } else if (pin->version != codeVersion) {
            emitAt(spec.versionFile, versionLine,
                   "format '" + spec.id + "' pin says version " +
                       std::to_string(pin->version) +
                       " but the code constant is " +
                       std::to_string(codeVersion) +
                       "; update src/lint/schema_pins.hh");
        }

        // --- EXPERIMENTS.md registry row
        if (experiments_md.empty())
            continue;
        int docLine = 0;
        unsigned docVersion = 0;
        bool parsed = false;
        for (std::size_t i = 0; i < docLines.size(); ++i) {
            const std::string &dl = docLines[i];
            if (dl.find(spec.docKey) == std::string::npos ||
                dl.find('|') == std::string::npos)
                continue;
            docLine = static_cast<int>(i) + 1;
            // cells: | format | constant | current | where |
            std::vector<std::string> cells;
            std::string cell;
            std::stringstream cs(dl);
            while (std::getline(cs, cell, '|'))
                cells.push_back(cell);
            if (cells.size() > 3) {
                const std::string &c = cells[3];
                const auto a = c.find_first_of("0123456789");
                if (a != std::string::npos) {
                    docVersion = static_cast<unsigned>(
                        std::stoul(c.substr(a)));
                    parsed = true;
                }
            }
            break;
        }
        if (docLine == 0) {
            emitAt("EXPERIMENTS.md", 0,
                   "schema-version registry has no row for format '" +
                       spec.id + "' (looked for '" + spec.docKey +
                       "'); document it next to the other formats");
        } else if (!parsed || docVersion != codeVersion) {
            emitAt("EXPERIMENTS.md", docLine,
                   "registry row for format '" + spec.id +
                       "' documents version " +
                       (parsed ? std::to_string(docVersion)
                               : std::string("<unparsed>")) +
                       " but the code constant is " +
                       std::to_string(codeVersion) +
                       "; update the table");
        }
    }
    return findings;
}

// ==================================================== lock-order

const std::vector<std::string> &
lockOrderScope()
{
    static const std::vector<std::string> scope = {
        "src/serve/",
        "src/common/thread_pool",
        "src/sim/sweep",
    };
    return scope;
}

std::vector<Finding>
lintLockOrder(const CppModel &model,
              const std::vector<std::string> &scope)
{
    const auto &funcs = model.functions();

    const auto inScope = [&](const std::string &file) {
        for (const std::string &p : scope)
            if (file.rfind(p, 0) == 0)
                return true;
        return false;
    };

    // per-def lock facts for scoped definitions
    std::map<int, std::vector<LockEvent>> events;
    for (std::size_t i = 0; i < funcs.size(); ++i)
        if (inScope(funcs[i].file))
            events[static_cast<int>(i)] =
                lockEvents(model, funcs[i]);

    // may-acquire fixpoint over the whole call graph: direct
    // acquisitions plus everything reachable through callees
    std::map<int, std::set<std::string>> mayAcq;
    for (const auto &[d, evs] : events) {
        auto &s = mayAcq[d];
        const FunctionDef &def =
            funcs[static_cast<std::size_t>(d)];
        for (const LockEvent &ev : evs) {
            if (ev.kind == LockEvent::GuardDecl)
                s.insert(ev.mutexes.begin(), ev.mutexes.end());
            else if (ev.kind == LockEvent::Manual && ev.isLock)
                s.insert(normalizeMutexId(ev.expr, def));
        }
    }
    for (bool changed = true; changed;) {
        changed = false;
        for (std::size_t i = 0; i < funcs.size(); ++i) {
            const int d = static_cast<int>(i);
            std::set<std::string> acc = mayAcq.count(d)
                                            ? mayAcq[d]
                                            : std::set<std::string>{};
            const std::size_t before = acc.size();
            for (const CallSite &cs : funcs[i].calls) {
                if (cs.hasReceiver &&
                    (cs.name == "wait" || cs.name == "wait_for" ||
                     cs.name == "wait_until"))
                    continue;
                for (const int t : model.resolve(cs.name)) {
                    const auto it = mayAcq.find(t);
                    if (it != mayAcq.end())
                        acc.insert(it->second.begin(),
                                   it->second.end());
                }
            }
            if (acc.size() != before) {
                mayAcq[d] = std::move(acc);
                changed = true;
            }
        }
    }

    // walk each scoped def, tracking the held set scope-precisely
    struct Edge
    {
        std::string file;
        int line = 0;
        std::string note;
    };
    std::map<std::string, std::map<std::string, Edge>> graph;
    std::vector<Finding> findings;

    const auto emitAt = [&](const std::string &file, int line,
                            std::string msg,
                            std::vector<std::string> path = {}) {
        if (model.suppressed(file, line, "lock-order"))
            return;
        Finding f;
        f.file = file;
        f.line = line;
        f.rule = "lock-order";
        f.message = std::move(msg);
        f.path = std::move(path);
        findings.push_back(std::move(f));
    };

    for (const auto &[d, evs] : events) {
        const FunctionDef &def =
            funcs[static_cast<std::size_t>(d)];
        const FileModel *fm = model.file(def.file);
        if (!fm)
            continue;

        struct Held
        {
            std::string mutex;
            std::string var; // guard variable ("" for manual)
            int declDepth = 0;
            int line = 0;
            bool engaged = true;
        };
        std::vector<Held> held;

        const auto depthAt = [&](int line1) {
            const std::size_t i = static_cast<std::size_t>(
                std::max(0, line1 - 1));
            return i < fm->depthAtLineStart.size()
                       ? fm->depthAtLineStart[i]
                       : 0;
        };
        // Minimum brace depth reached anywhere within one line --
        // depthAtLineStart alone misses a scope that closes and a
        // sibling that reopens to the same depth between two events
        // (e.g. back-to-back `{ lock_guard ... }` blocks).
        const auto lineMinDepth = [&](int line1) {
            int d = depthAt(line1);
            int mn = d;
            const std::size_t i = static_cast<std::size_t>(
                std::max(0, line1 - 1));
            if (i < fm->view.code.size()) {
                for (const char c : fm->view.code[i]) {
                    if (c == '{') {
                        ++d;
                    } else if (c == '}') {
                        --d;
                        mn = std::min(mn, d);
                    }
                }
            }
            return mn;
        };
        const auto engagedMutexes = [&]() {
            std::vector<std::string> out;
            for (const Held &h : held)
                if (h.engaged)
                    out.push_back(h.mutex);
            return out;
        };
        const auto addEdges = [&](const std::string &to,
                                  int line, std::string note) {
            for (const Held &h : held) {
                if (!h.engaged || h.mutex == to)
                    continue;
                auto &slot = graph[h.mutex];
                if (!slot.count(to))
                    slot[to] = {def.file, line,
                                def.qualified + ": " + note};
            }
        };

        int prevLine = 0;
        for (const LockEvent &ev : evs) {
            // scope-release guards whose block has closed anywhere
            // since the previous event -- the depth may have bounced
            // back up to the declaration depth by the event line
            int minDepth = depthAt(ev.line);
            for (int l = prevLine + 1; l < ev.line; ++l)
                minDepth = std::min(minDepth, lineMinDepth(l));
            prevLine = std::max(prevLine, ev.line);
            held.erase(std::remove_if(held.begin(), held.end(),
                                      [&](const Held &h) {
                                          return minDepth <
                                                 h.declDepth;
                                      }),
                       held.end());

            if (ev.kind == LockEvent::GuardDecl) {
                for (const std::string &m : ev.mutexes) {
                    if (ev.engaged)
                        addEdges(m, ev.line,
                                 "acquires " + m + " while held");
                    held.push_back({m, ev.var, depthAt(ev.line),
                                    ev.line, ev.engaged});
                }
                continue;
            }
            if (ev.kind == LockEvent::Manual) {
                // a guard variable toggles its own mutexes; a bare
                // expression is treated as the mutex itself
                bool isGuardVar = false;
                for (Held &h : held) {
                    if (h.var == ev.expr) {
                        isGuardVar = true;
                        if (ev.isLock && !h.engaged) {
                            h.engaged = true;
                            addEdges(h.mutex, ev.line,
                                     "re-locks " + h.mutex +
                                         " while held");
                        } else if (!ev.isLock) {
                            h.engaged = false;
                        }
                    }
                }
                if (isGuardVar)
                    continue;
                const std::string id =
                    normalizeMutexId(ev.expr, def);
                if (ev.isLock) {
                    addEdges(id, ev.line,
                             "locks " + id + " while held");
                    held.push_back(
                        {id, "", depthAt(ev.line), ev.line, true});
                } else {
                    for (auto it = held.rbegin();
                         it != held.rend(); ++it) {
                        if (it->mutex == id) {
                            held.erase(std::next(it).base());
                            break;
                        }
                    }
                }
                continue;
            }

            // --- call under (possibly) held locks
            const CallSite &cs =
                def.calls[static_cast<std::size_t>(ev.callIdx)];
            const auto heldNow = engagedMutexes();
            if (heldNow.empty())
                continue;
            if (cs.hasReceiver &&
                (cs.name == "wait" || cs.name == "wait_for" ||
                 cs.name == "wait_until"))
                continue; // cv waits release the lock while parked
            if (isBlockingCall(cs.name)) {
                std::string msg =
                    "blocking call '" + cs.name +
                    "' while holding ";
                for (std::size_t i = 0; i < heldNow.size(); ++i)
                    msg += (i ? ", " : "") + heldNow[i];
                msg += " (in " + def.qualified +
                       "); release the lock before parking the "
                       "thread";
                emitAt(def.file, cs.line, std::move(msg), heldNow);
                continue;
            }
            const std::vector<int> targets =
                model.resolve(cs.name);
            if (targets.empty()) {
                if (!cs.hasReceiver &&
                    model.callableNames().count(cs.name)) {
                    emitAt(def.file, cs.line,
                           "opaque callable '" + cs.name +
                               "' invoked while holding " +
                               heldNow.front() + " (in " +
                               def.qualified +
                               "); callbacks under a lock can "
                               "re-enter and deadlock -- unlock "
                               "around the call",
                           heldNow);
                }
                continue;
            }
            std::set<std::string> acq;
            for (const int t : targets) {
                const auto it = mayAcq.find(t);
                if (it != mayAcq.end())
                    acq.insert(it->second.begin(),
                               it->second.end());
            }
            for (const std::string &a : acq) {
                if (std::find(heldNow.begin(), heldNow.end(), a) !=
                    heldNow.end())
                    continue;
                addEdges(a, cs.line,
                         "calls " + cs.name +
                             "() which may acquire " + a);
            }
        }
    }

    // --- cycle detection over the acquisition graph (DFS)
    std::set<std::string> done;
    for (const auto &[start, _] : graph) {
        if (done.count(start))
            continue;
        // DFS from `start` looking for a path back to `start`
        std::vector<std::string> stack = {start};
        std::map<std::string, std::string> parent;
        std::set<std::string> seen = {start};
        bool cycle = false;
        std::string closer;
        while (!stack.empty() && !cycle) {
            const std::string node = stack.back();
            stack.pop_back();
            const auto it = graph.find(node);
            if (it == graph.end())
                continue;
            for (const auto &[to, edge] : it->second) {
                if (to == start) {
                    cycle = true;
                    closer = node;
                    break;
                }
                if (seen.insert(to).second) {
                    parent[to] = node;
                    stack.push_back(to);
                }
            }
        }
        if (!cycle)
            continue;
        // reconstruct start -> ... -> closer -> start
        std::vector<std::string> nodes;
        for (std::string n = closer; n != start; n = parent[n])
            nodes.push_back(n);
        nodes.push_back(start);
        std::reverse(nodes.begin(), nodes.end());
        nodes.push_back(start); // close the loop for the message
        for (const std::string &n : nodes)
            done.insert(n);

        std::string msg = "lock-order cycle: ";
        for (std::size_t i = 0; i < nodes.size(); ++i)
            msg += (i ? " -> " : "") + nodes[i];
        const Edge *anchor = nullptr;
        for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
            const Edge &e = graph[nodes[i]][nodes[i + 1]];
            msg += "; " + nodes[i] + " -> " + nodes[i + 1] + " (" +
                   e.note + " at " + e.file + ":" +
                   std::to_string(e.line) + ")";
            if (!anchor)
                anchor = &e;
        }
        msg += "; acquire these mutexes in one global order";
        nodes.pop_back();
        emitAt(anchor->file, anchor->line, std::move(msg), nodes);
    }

    std::stable_sort(findings.begin(), findings.end(),
                     [](const Finding &a, const Finding &b) {
                         if (a.file != b.file)
                             return a.file < b.file;
                         return a.line < b.line;
                     });
    return findings;
}

std::vector<Finding>
lintSource(const std::string &relpath, const std::string &content,
           const std::string &sibling_header, const Options &opts)
{
    const std::string rel = normalizeSlashes(relpath);
    const SourceView view = preprocess(content);
    SourceView sibView;
    const SourceView *sibling = nullptr;
    if (!sibling_header.empty()) {
        sibView = preprocess(sibling_header);
        sibling = &sibView;
    }

    std::vector<Finding> findings;
    RuleCtx ctx{rel, view, sibling, findings};

    const auto enabled = [&](const char *id) {
        if (opts.onlyRules.empty())
            return true;
        return std::find(opts.onlyRules.begin(),
                         opts.onlyRules.end(),
                         id) != opts.onlyRules.end();
    };

    if (enabled("no-wallclock"))
        ruleNoWallclock(ctx);
    if (enabled("no-unseeded-rand"))
        ruleNoUnseededRand(ctx);
    if (enabled("no-unordered-iter"))
        ruleNoUnorderedIter(ctx);
    if (enabled("no-naked-new"))
        ruleNoNakedNew(ctx);
    if (enabled("header-guard"))
        ruleHeaderGuard(ctx);
    if (enabled("scheme-registered"))
        ruleSchemeRegistered(ctx);

    // Apply suppressions, then order by line for stable output.
    const Suppressions sup = parseSuppressions(view);
    std::vector<Finding> kept;
    for (Finding &f : findings) {
        if (!sup.covers(f.line, f.rule))
            kept.push_back(std::move(f));
    }
    std::stable_sort(kept.begin(), kept.end(),
                     [](const Finding &a, const Finding &b) {
                         return a.line < b.line;
                     });
    return kept;
}

std::vector<Finding>
lintStatsPrinted(const std::string &decl_path,
                 const std::string &decl_content,
                 const std::string &printer_content)
{
    const SourceView decl = preprocess(decl_content);
    const SourceView printer = preprocess(printer_content);

    std::string printerCode;
    for (const std::string &line : printer.code) {
        printerCode += line;
        printerCode += '\n';
    }

    std::vector<Finding> findings;

    // Locate `struct RunStats { ... };` and walk its braces.
    static const std::regex structRe(R"(\bstruct\s+RunStats\b)");
    static const std::regex fieldRe(
        R"(([A-Za-z_]\w*)\s*(?:=[^;]*)?;\s*$)");
    int depth = 0;
    bool inStruct = false;
    for (std::size_t i = 0; i < decl.code.size(); ++i) {
        const std::string &line = decl.code[i];
        if (!inStruct) {
            if (std::regex_search(line, structRe))
                inStruct = true;
            if (!inStruct)
                continue;
        }
        for (const char c : line) {
            if (c == '{')
                ++depth;
            else if (c == '}')
                --depth;
        }
        if (inStruct && depth == 0 &&
            line.find('}') != std::string::npos)
            break; // end of struct

        if (depth != 1)
            continue; // nested scopes / before the opening brace
        std::smatch m;
        if (!std::regex_search(line, m, fieldRe))
            continue;
        const std::string field = m[1].str();
        const std::regex useRe("\\b" + field + "\\b");
        if (!std::regex_search(printerCode, useRe)) {
            Finding f;
            f.file = normalizeSlashes(decl_path);
            f.line = static_cast<int>(i) + 1;
            f.rule = "stats-printed";
            f.message =
                "RunStats field '" + field +
                "' is never referenced by the serializer (" +
                kStatsPrinter +
                "); add it to statsToJson or drop the field";
            findings.push_back(std::move(f));
        }
    }

    const Suppressions sup = parseSuppressions(decl);
    std::vector<Finding> kept;
    for (Finding &f : findings)
        if (!sup.covers(f.line, f.rule))
            kept.push_back(std::move(f));
    return kept;
}

std::uint64_t
ckptSchemaFingerprint(
    const std::vector<std::pair<std::string, std::string>> &files)
{
    // Same FNV-1a parameters as the checkpoint file checksum.
    constexpr std::uint64_t kOffset = 14695981039346656037ULL;
    constexpr std::uint64_t kPrime = 1099511628211ULL;

    std::vector<std::pair<std::string, std::string>> sorted = files;
    std::sort(sorted.begin(), sorted.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });

    static const std::regex serializerRef(R"(\bBinWriter|\bBinReader)");
    static const std::regex fieldCall(
        R"((\.|->)\s*(u8|u16|u32|u64|f64|str|bytes)\s*\()");

    std::uint64_t h = kOffset;
    const auto feed = [&](const std::string &s) {
        for (const char c : s) {
            h ^= static_cast<unsigned char>(c);
            h *= kPrime;
        }
    };

    for (const auto &[rel, content] : sorted) {
        const SourceView view = preprocess(content);
        bool touches = false;
        for (const std::string &line : view.code) {
            if (std::regex_search(line, serializerRef)) {
                touches = true;
                break;
            }
        }
        if (!touches)
            continue;
        for (const std::string &line : view.code) {
            if (!std::regex_search(line, fieldCall))
                continue;
            // Whitespace-insensitive so reformatting never trips
            // the rule; order-sensitive so field moves always do.
            feed(normalizeSlashes(rel));
            feed(":");
            for (const char c : line) {
                if (std::isspace(static_cast<unsigned char>(c)))
                    continue;
                h ^= static_cast<unsigned char>(c);
                h *= kPrime;
            }
            feed("\n");
        }
    }
    return h;
}

std::vector<Finding>
lintCkptVersioned(
    const std::vector<std::pair<std::string, std::string>> &files,
    const std::string &pin_path, const std::string &pin_content)
{
    const std::uint64_t have = ckptSchemaFingerprint(files);

    std::vector<Finding> findings;
    const SourceView pinView = preprocess(pin_content);

    static const std::regex pinRe(
        R"(kCheckpointSchemaHash\s*=\s*0[xX]([0-9a-fA-F']+))");
    std::uint64_t want = 0;
    int pinLine = 0; // 1-based; 0 = not found
    for (std::size_t i = 0; i < pinView.code.size(); ++i) {
        std::smatch m;
        if (!std::regex_search(pinView.code[i], m, pinRe))
            continue;
        std::string digits = m[1].str();
        digits.erase(std::remove(digits.begin(), digits.end(), '\''),
                     digits.end());
        want = std::stoull(digits, nullptr, 16);
        pinLine = static_cast<int>(i) + 1;
        break;
    }

    if (pinLine == 0) {
        Finding f;
        f.file = normalizeSlashes(pin_path);
        f.line = 0;
        f.rule = "ckpt-versioned";
        f.message = "no `kCheckpointSchemaHash = 0x...` pin found; "
                    "pin the serialized-field fingerprint " +
                    hashHex(have) +
                    " so layout changes are caught at lint time";
        findings.push_back(std::move(f));
    } else if (want != have) {
        Finding f;
        f.file = normalizeSlashes(pin_path);
        f.line = pinLine;
        f.rule = "ckpt-versioned";
        f.message =
            "serialized-field fingerprint is " + hashHex(have) +
            " but kCheckpointSchemaHash pins " + hashHex(want) +
            "; the checkpoint byte layout changed -- bump "
            "kCheckpointVersion if files written before this change "
            "are now unreadable, then re-pin kCheckpointSchemaHash "
            "to " +
            hashHex(have);
        findings.push_back(std::move(f));
    }

    const Suppressions sup = parseSuppressions(pinView);
    std::vector<Finding> kept;
    for (Finding &f : findings)
        if (!sup.covers(f.line, f.rule))
            kept.push_back(std::move(f));
    return kept;
}

std::vector<Finding>
lintTree(const Options &opts, const std::vector<std::string> &paths,
         std::size_t *files_scanned)
{
    namespace fs = std::filesystem;
    const fs::path root(opts.root);

    // Collect candidate files, sorted for deterministic output.
    std::set<std::string> files;
    for (const std::string &p : paths) {
        const fs::path abs = root / p;
        std::error_code ec;
        if (fs::is_directory(abs, ec)) {
            for (auto it = fs::recursive_directory_iterator(abs, ec);
                 !ec && it != fs::recursive_directory_iterator();
                 ++it) {
                if (!it->is_regular_file())
                    continue;
                const std::string ext =
                    it->path().extension().string();
                if (ext != ".cc" && ext != ".hh")
                    continue;
                files.insert(normalizeSlashes(
                    fs::relative(it->path(), root).string()));
            }
        } else if (fs::is_regular_file(abs, ec)) {
            files.insert(normalizeSlashes(p));
        } else {
            bmc_fatal("bmclint: no such file or directory: %s",
                      abs.string().c_str());
        }
    }

    if (files_scanned)
        *files_scanned = files.size();

    std::vector<Finding> findings;
    for (const std::string &rel : files) {
        std::string content;
        if (!readFile(root / rel, content)) {
            bmc_fatal("bmclint: cannot read %s", rel.c_str());
        }
        std::string sibling;
        if (relExtension(rel) == ".cc") {
            const std::string hh =
                rel.substr(0, rel.size() - 3) + ".hh";
            readFile(root / hh, sibling); // best effort
        }
        auto f = lintSource(rel, content, sibling, opts);
        findings.insert(findings.end(),
                        std::make_move_iterator(f.begin()),
                        std::make_move_iterator(f.end()));
    }

    const auto enabled = [&](const char *id) {
        if (opts.onlyRules.empty())
            return true;
        return std::find(opts.onlyRules.begin(),
                         opts.onlyRules.end(),
                         id) != opts.onlyRules.end();
    };
    if (enabled("stats-printed")) {
        std::string decl, printer;
        if (readFile(root / kStatsDecl, decl) &&
            readFile(root / kStatsPrinter, printer)) {
            auto f = lintStatsPrinted(kStatsDecl, decl, printer);
            findings.insert(findings.end(),
                            std::make_move_iterator(f.begin()),
                            std::make_move_iterator(f.end()));
        }
    }

    // Whole-project rules run over src/ regardless of the path
    // arguments, like stats-printed: fingerprints and the call
    // graph are only meaningful over the complete source set.
    std::vector<std::pair<std::string, std::string>> srcs;
    {
        std::error_code ec;
        for (auto it =
                 fs::recursive_directory_iterator(root / "src", ec);
             !ec && it != fs::recursive_directory_iterator(); ++it) {
            if (!it->is_regular_file())
                continue;
            const std::string ext = it->path().extension().string();
            if (ext != ".cc" && ext != ".hh")
                continue;
            std::string content;
            if (readFile(it->path(), content))
                srcs.emplace_back(
                    normalizeSlashes(
                        fs::relative(it->path(), root).string()),
                    std::move(content));
        }
        std::sort(srcs.begin(), srcs.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
    }

    if (enabled("ckpt-versioned")) {
        std::string pin;
        if (readFile(root / kCkptPin, pin)) {
            auto f = lintCkptVersioned(srcs, kCkptPin, pin);
            findings.insert(findings.end(),
                            std::make_move_iterator(f.begin()),
                            std::make_move_iterator(f.end()));
        }
    }

    // --- semantic pass: one model, three rule families
    if (enabled("det-taint") || enabled("schema-drift") ||
        enabled("lock-order")) {
        CppModel model;
        for (const auto &[rel, content] : srcs)
            model.addFile(rel, content);

        if (enabled("det-taint")) {
            auto f = lintDetTaint(model);
            findings.insert(findings.end(),
                            std::make_move_iterator(f.begin()),
                            std::make_move_iterator(f.end()));
        }
        if (enabled("schema-drift")) {
            std::string experiments;
            readFile(root / "EXPERIMENTS.md",
                     experiments); // best effort: fixture trees
                                   // have no registry to check
            auto f = lintSchemaDrift(model, schemaFormats(),
                                     defaultSchemaPins(),
                                     experiments);
            findings.insert(findings.end(),
                            std::make_move_iterator(f.begin()),
                            std::make_move_iterator(f.end()));
        }
        if (enabled("lock-order")) {
            auto f = lintLockOrder(model, lockOrderScope());
            findings.insert(findings.end(),
                            std::make_move_iterator(f.begin()),
                            std::make_move_iterator(f.end()));
        }
    }
    return findings;
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out += c;
        }
    }
    return out;
}

} // anonymous namespace

std::string
findingsToJson(const std::vector<Finding> &findings,
               std::size_t files_scanned)
{
    // schema 2: adds per-finding "path" call-chain evidence and the
    // machine-readable "rules" catalog
    std::string out = "{\"bmclint_schema\": 2, \"files_scanned\": ";
    out += std::to_string(files_scanned);
    out += ", \"rules\": [";
    const auto &rules = ruleCatalog();
    for (std::size_t i = 0; i < rules.size(); ++i) {
        if (i)
            out += ", ";
        out += "{\"id\": \"" + jsonEscape(rules[i].id) + "\", ";
        out += "\"summary\": \"" + jsonEscape(rules[i].summary) +
               "\"}";
    }
    out += "], \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        if (i)
            out += ", ";
        out += "{\"file\": \"" + jsonEscape(f.file) + "\", ";
        out += "\"line\": " + std::to_string(f.line) + ", ";
        out += "\"rule\": \"" + jsonEscape(f.rule) + "\", ";
        out += "\"message\": \"" + jsonEscape(f.message) + "\"";
        if (!f.path.empty()) {
            out += ", \"path\": [";
            for (std::size_t p = 0; p < f.path.size(); ++p) {
                if (p)
                    out += ", ";
                out += "\"" + jsonEscape(f.path[p]) + "\"";
            }
            out += "]";
        }
        out += "}";
    }
    out += "], \"summary\": {\"findings\": ";
    out += std::to_string(findings.size());
    out += "}}";
    return out;
}

std::string
findingsToSarif(const std::vector<Finding> &findings)
{
    const auto &rules = ruleCatalog();
    const auto ruleIndex = [&](const std::string &id) {
        for (std::size_t i = 0; i < rules.size(); ++i)
            if (id == rules[i].id)
                return static_cast<int>(i);
        return -1;
    };

    std::string out;
    out += "{\n";
    out += "  \"$schema\": "
           "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
    out += "  \"version\": \"2.1.0\",\n";
    out += "  \"runs\": [\n";
    out += "    {\n";
    out += "      \"tool\": {\n";
    out += "        \"driver\": {\n";
    out += "          \"name\": \"bmclint\",\n";
    out += "          \"rules\": [\n";
    for (std::size_t i = 0; i < rules.size(); ++i) {
        out += "            {\"id\": \"";
        out += jsonEscape(rules[i].id);
        out += "\", \"shortDescription\": {\"text\": \"";
        out += jsonEscape(rules[i].summary);
        out += "\"}}";
        out += i + 1 < rules.size() ? ",\n" : "\n";
    }
    out += "          ]\n";
    out += "        }\n";
    out += "      },\n";
    out += "      \"results\": [\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        std::string text = f.message;
        if (!f.path.empty()) {
            text += " [path: ";
            for (std::size_t p = 0; p < f.path.size(); ++p) {
                if (p)
                    text += " -> ";
                text += f.path[p];
            }
            text += "]";
        }
        out += "        {\n";
        out += "          \"ruleId\": \"" + jsonEscape(f.rule) +
               "\",\n";
        const int ri = ruleIndex(f.rule);
        if (ri >= 0)
            out += "          \"ruleIndex\": " +
                   std::to_string(ri) + ",\n";
        out += "          \"level\": \"error\",\n";
        out += "          \"message\": {\"text\": \"" +
               jsonEscape(text) + "\"},\n";
        out += "          \"locations\": [{\"physicalLocation\": "
               "{\"artifactLocation\": {\"uri\": \"" +
               jsonEscape(f.file) +
               "\"}, \"region\": {\"startLine\": " +
               std::to_string(std::max(1, f.line)) + "}}}]\n";
        out += i + 1 < findings.size() ? "        },\n"
                                       : "        }\n";
    }
    out += "      ]\n";
    out += "    }\n";
    out += "  ]\n";
    out += "}\n";
    return out;
}

} // namespace bmc::lint
