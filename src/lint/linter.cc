#include "lint/linter.hh"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

#include "common/logging.hh"

namespace bmc::lint
{

namespace
{

// ------------------------------------------------------- scoping

/** Directories whose code defines simulated state (or, for
 *  src/serve/, must reproduce it bit-identically): wall time and
 *  unseeded randomness are banned outright here. The serve daemon
 *  takes its timing through common/wallclock.hh only. */
constexpr const char *kTimingDirs[] = {
    "src/sim/",
    "src/dram/",
    "src/dramcache/",
    "src/cache/",
    "src/serve/",
};

/** Files on the event hot path: allocation is pooled by design, so
 *  naked new/malloc needs an explicit justification. */
constexpr const char *kEventPathFiles[] = {
    "src/common/event_queue.hh",
    "src/common/event_queue.cc",
    "src/common/inline_function.hh",
    "src/dram/channel.cc",
    "src/dram/channel.hh",
    "src/dram/command_channel.cc",
    "src/dram/command_channel.hh",
    "src/sim/dramcache_controller.cc",
    "src/cache/mshr.cc",
    "src/cache/mshr.hh",
};

/** The curated-stats pair checked by stats-printed. */
constexpr const char *kStatsDecl = "src/sim/metrics.hh";
constexpr const char *kStatsPrinter = "src/sim/metrics.cc";

/** Where the checkpoint schema pin lives (ckpt-versioned). */
constexpr const char *kCkptPin = "src/sim/checkpoint.hh";

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
inTimingDirs(const std::string &relpath)
{
    for (const char *dir : kTimingDirs)
        if (startsWith(relpath, dir))
            return true;
    return false;
}

bool
isEventPathFile(const std::string &relpath)
{
    for (const char *f : kEventPathFiles)
        if (relpath == f)
            return true;
    return false;
}

// ------------------------------------------- source preprocessing

/**
 * A file split into lines, twice: @c raw as written (suppression
 * comments live here) and @c code with comments, string literals and
 * char literals blanked out so rule patterns never fire on prose or
 * quoted text. Blanking preserves column positions.
 */
struct SourceView
{
    std::vector<std::string> raw;
    std::vector<std::string> code;
};

bool looksLikeCharLiteral(const SourceView &v);
std::string relExtension(const std::string &relpath);

SourceView
preprocess(const std::string &content)
{
    SourceView v;
    v.raw.emplace_back();
    v.code.emplace_back();

    enum class State
    {
        Normal,
        LineComment,
        BlockComment,
        String,
        Char,
        RawString,
    };
    State st = State::Normal;
    std::string rawDelim; // raw-string closing delimiter ')delim"'

    const std::size_t n = content.size();
    for (std::size_t i = 0; i < n; ++i) {
        const char c = content[i];
        const char nx = i + 1 < n ? content[i + 1] : '\0';

        if (c == '\n') {
            if (st == State::LineComment)
                st = State::Normal;
            v.raw.emplace_back();
            v.code.emplace_back();
            continue;
        }
        v.raw.back() += c;

        switch (st) {
          case State::Normal:
            if (c == '/' && nx == '/') {
                st = State::LineComment;
                v.code.back() += ' ';
            } else if (c == '/' && nx == '*') {
                st = State::BlockComment;
                v.code.back() += ' ';
            } else if (c == 'R' && nx == '"' &&
                       (v.code.back().empty() ||
                        !(std::isalnum(static_cast<unsigned char>(
                              v.code.back().back())) ||
                          v.code.back().back() == '_'))) {
                // R"delim( ... )delim"
                std::size_t j = i + 2;
                std::string delim;
                while (j < n && content[j] != '(' &&
                       content[j] != '\n')
                    delim += content[j++];
                rawDelim = ")" + delim + "\"";
                st = State::RawString;
                v.code.back() += ' ';
            } else if (c == '"') {
                st = State::String;
                v.code.back() += ' ';
            } else if (c == '\'' && looksLikeCharLiteral(v)) {
                st = State::Char;
                v.code.back() += ' ';
            } else {
                v.code.back() += c;
            }
            break;
          case State::LineComment:
            v.code.back() += ' ';
            break;
          case State::BlockComment:
            if (c == '*' && nx == '/') {
                v.code.back() += "  ";
                v.raw.back() += nx;
                ++i;
                st = State::Normal;
            } else {
                v.code.back() += ' ';
            }
            break;
          case State::String:
          case State::Char:
            if (c == '\\' && i + 1 < n && nx != '\n') {
                v.code.back() += "  ";
                v.raw.back() += nx;
                ++i;
            } else {
                v.code.back() += ' ';
                if ((st == State::String && c == '"') ||
                    (st == State::Char && c == '\''))
                    st = State::Normal;
            }
            break;
          case State::RawString:
            v.code.back() += ' ';
            if (c == ')' &&
                content.compare(i, rawDelim.size(), rawDelim) == 0) {
                for (std::size_t k = 1; k < rawDelim.size(); ++k) {
                    v.raw.back() += content[i + k];
                    v.code.back() += ' ';
                }
                i += rawDelim.size() - 1;
                st = State::Normal;
            }
            break;
        }
    }
    return v;
}

/**
 * Distinguish a char literal's opening quote from a digit separator
 * (1'000'000). A quote directly after an identifier char or digit is
 * a separator.
 */
bool
looksLikeCharLiteral(const SourceView &v)
{
    const std::string &line = v.code.back();
    if (line.empty())
        return true;
    const char prev = line.back();
    return !(std::isalnum(static_cast<unsigned char>(prev)) ||
             prev == '_');
}

// ------------------------------------------------- suppressions

/** Rules allowed on each line via `bmclint:allow(...)` comments. A
 *  suppression covers its own line and the line below it. */
struct Suppressions
{
    // one set per 0-based line; "*" allows everything on the line
    std::vector<std::set<std::string>> allowed;

    bool
    covers(int line1, const std::string &rule) const
    {
        for (int l : {line1 - 1, line1 - 2}) { // own + previous line
            if (l < 0 || l >= static_cast<int>(allowed.size()))
                continue;
            const auto &s = allowed[static_cast<std::size_t>(l)];
            if (s.count("*") || s.count(rule))
                return true;
        }
        return false;
    }
};

Suppressions
parseSuppressions(const SourceView &v)
{
    static const std::regex re(
        R"(bmclint:allow\(([A-Za-z0-9_*, -]+)\))");
    Suppressions sup;
    sup.allowed.resize(v.raw.size());
    for (std::size_t i = 0; i < v.raw.size(); ++i) {
        auto begin = std::sregex_iterator(v.raw[i].begin(),
                                          v.raw[i].end(), re);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            std::stringstream ss((*it)[1].str());
            std::string id;
            while (std::getline(ss, id, ',')) {
                const auto a = id.find_first_not_of(" \t");
                const auto b = id.find_last_not_of(" \t");
                if (a != std::string::npos)
                    sup.allowed[i].insert(id.substr(a, b - a + 1));
            }
        }
    }
    return sup;
}

// ------------------------------------------------------- rules

struct RuleCtx
{
    const std::string &relpath;
    const SourceView &view;
    const SourceView *sibling; // may be null
    std::vector<Finding> &out;
};

void
emit(RuleCtx &ctx, std::size_t line0, const char *rule,
     std::string message)
{
    Finding f;
    f.file = ctx.relpath;
    f.line = static_cast<int>(line0) + 1;
    f.rule = rule;
    f.message = std::move(message);
    ctx.out.push_back(std::move(f));
}

void
scanPatterns(RuleCtx &ctx, const char *rule,
             const std::vector<std::pair<std::regex, const char *>>
                 &patterns)
{
    for (std::size_t i = 0; i < ctx.view.code.size(); ++i) {
        for (const auto &[re, what] : patterns) {
            if (std::regex_search(ctx.view.code[i], re))
                emit(ctx, i, rule, what);
        }
    }
}

void
ruleNoWallclock(RuleCtx &ctx)
{
    if (!inTimingDirs(ctx.relpath))
        return;
    static const std::vector<std::pair<std::regex, const char *>>
        patterns = {
            {std::regex(R"(std\s*::\s*chrono)"),
             "std::chrono in a timing-model directory; wall time "
             "must not reach simulated state (route telemetry "
             "through common/wallclock.hh)"},
            {std::regex(R"((^|[^\w.>])time\s*\()"),
             "time() in a timing-model directory; simulated time is "
             "the event queue's now()"},
            {std::regex(
                 R"(\b(gettimeofday|clock_gettime|clock)\s*\()"),
             "wall-clock call in a timing-model directory"},
        };
    scanPatterns(ctx, "no-wallclock", patterns);
}

void
ruleNoUnseededRand(RuleCtx &ctx)
{
    if (!inTimingDirs(ctx.relpath))
        return;
    static const std::vector<std::pair<std::regex, const char *>>
        patterns = {
            {std::regex(R"((^|[^\w])s?rand\s*\()"),
             "C rand()/srand() in a timing-model directory; use the "
             "seeded xoshiro streams (common/rng.hh)"},
            {std::regex(R"(\brandom_device\b)"),
             "std::random_device is non-deterministic; derive seeds "
             "with sim::deriveRunSeed instead"},
            {std::regex(R"(\bdefault_random_engine\b)"),
             "default_random_engine has unspecified, per-platform "
             "behaviour; use the seeded xoshiro streams"},
        };
    scanPatterns(ctx, "no-unseeded-rand", patterns);
}

/** Collect identifiers declared as std::unordered_{map,set} in
 *  @p view (member or local declarations). */
std::set<std::string>
unorderedNames(const SourceView &view)
{
    std::set<std::string> names;
    const std::regex decl(R"(unordered_(?:map|set)\s*<)");
    for (const std::string &line : view.code) {
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            decl);
             it != std::sregex_iterator(); ++it) {
            // Skip the balanced template argument list, then read
            // the declared identifier. Declarations whose argument
            // list spans lines are matched when the name appears on
            // a later line next to the closing '>' -- rare in this
            // tree, where declarations are single-statement.
            std::size_t pos = static_cast<std::size_t>(
                it->position() + it->length());
            int depth = 1;
            while (pos < line.size() && depth > 0) {
                if (line[pos] == '<')
                    ++depth;
                else if (line[pos] == '>')
                    --depth;
                ++pos;
            }
            if (depth != 0)
                continue;
            std::smatch m;
            const std::string rest = line.substr(pos);
            static const std::regex ident(
                R"(^\s*&?\s*([A-Za-z_]\w*)\s*[;={(])");
            if (std::regex_search(rest, m, ident))
                names.insert(m[1].str());
        }
    }
    return names;
}

void
ruleNoUnorderedIter(RuleCtx &ctx)
{
    // Only files that serialize JSON/JSONL can leak iteration order
    // into output the determinism tests diff.
    bool writes_json = false;
    for (const std::string &line : ctx.view.raw) {
        auto lower = line;
        std::transform(lower.begin(), lower.end(), lower.begin(),
                       [](unsigned char c) {
                           return static_cast<char>(
                               std::tolower(c));
                       });
        if (lower.find("json") != std::string::npos) {
            writes_json = true;
            break;
        }
    }
    if (!writes_json)
        return;

    std::set<std::string> names = unorderedNames(ctx.view);
    if (ctx.sibling) {
        const auto sib = unorderedNames(*ctx.sibling);
        names.insert(sib.begin(), sib.end());
    }
    if (names.empty())
        return;

    for (std::size_t i = 0; i < ctx.view.code.size(); ++i) {
        const std::string &line = ctx.view.code[i];
        std::smatch m;
        static const std::regex rangeFor(
            R"(for\s*\([^;()]*:\s*\*?\s*(?:this\s*->\s*)?([A-Za-z_]\w*)\s*\))");
        if (std::regex_search(line, m, rangeFor) &&
            names.count(m[1].str())) {
            emit(ctx, i, "no-unordered-iter",
                 "range-for over unordered container '" +
                     m[1].str() +
                     "' in a JSON-emitting file; iteration order is "
                     "run-dependent and breaks -jN bit-identity "
                     "(copy into a sorted vector first)");
            continue;
        }
        static const std::regex beginCall(
            R"(([A-Za-z_]\w*)\s*\.\s*c?begin\s*\()");
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            beginCall);
             it != std::sregex_iterator(); ++it) {
            if (names.count((*it)[1].str())) {
                emit(ctx, i, "no-unordered-iter",
                     "iterator over unordered container '" +
                         (*it)[1].str() +
                         "' in a JSON-emitting file; iteration order "
                         "is run-dependent");
            }
        }
    }
}

void
ruleNoNakedNew(RuleCtx &ctx)
{
    if (!isEventPathFile(ctx.relpath))
        return;
    static const std::vector<std::pair<std::regex, const char *>>
        patterns = {
            // `new T` flags; placement `new (addr)` does not (it
            // constructs into pooled storage, which is the point).
            {std::regex(R"((^|[^:\w])new\s+[A-Za-z_])"),
             "naked new in an event-path file; steady-state event "
             "code recycles pooled nodes -- box explicitly via an "
             "owning smart pointer or justify the allocation"},
            {std::regex(R"(\b(malloc|calloc|realloc)\s*\()"),
             "malloc-family call in an event-path file; use the "
             "pooled allocators"},
        };
    scanPatterns(ctx, "no-naked-new", patterns);
}

std::string
expectedGuard(const std::string &relpath)
{
    std::string p = relpath;
    if (startsWith(p, "src/"))
        p = p.substr(4);
    std::string guard = "BMC_";
    for (const char c : p) {
        if (c == '/' || c == '.' || c == '-')
            guard += '_';
        else
            guard += static_cast<char>(
                std::toupper(static_cast<unsigned char>(c)));
    }
    return guard;
}

void
ruleHeaderGuard(RuleCtx &ctx)
{
    if (relExtension(ctx.relpath) != ".hh")
        return;

    const std::string want = expectedGuard(ctx.relpath);
    static const std::regex pragmaOnce(R"(^\s*#\s*pragma\s+once\b)");
    static const std::regex ifndefRe(
        R"(^\s*#\s*ifndef\s+([A-Za-z_]\w*))");
    static const std::regex defineRe(
        R"(^\s*#\s*define\s+([A-Za-z_]\w*))");

    std::string guard;
    std::size_t guardLine = 0;
    bool sawDefine = false;
    for (std::size_t i = 0; i < ctx.view.code.size(); ++i) {
        const std::string &line = ctx.view.code[i];
        std::smatch m;
        if (std::regex_search(line, m, pragmaOnce)) {
            emit(ctx, i, "header-guard",
                 "#pragma once is inconsistent with this tree's "
                 "include-guard convention; use #ifndef " +
                     want);
            return;
        }
        if (guard.empty()) {
            if (std::regex_search(line, m, ifndefRe)) {
                guard = m[1].str();
                guardLine = i;
            }
        } else if (!sawDefine &&
                   std::regex_search(line, m, defineRe)) {
            if (m[1].str() != guard) {
                emit(ctx, i, "header-guard",
                     "#define does not match the #ifndef guard '" +
                         guard + "'");
                return;
            }
            sawDefine = true;
        }
    }
    if (guard.empty()) {
        emit(ctx, 0, "header-guard",
             "header has no include guard; expected #ifndef " + want);
        return;
    }
    if (!sawDefine) {
        emit(ctx, guardLine, "header-guard",
             "#ifndef " + guard + " has no matching #define");
        return;
    }
    if (guard != want) {
        emit(ctx, guardLine, "header-guard",
             "include guard '" + guard +
                 "' does not match the path convention; expected " +
                 want);
    }
}

std::string
relExtension(const std::string &relpath)
{
    const auto dot = relpath.find_last_of('.');
    return dot == std::string::npos ? "" : relpath.substr(dot);
}

void
ruleSchemeRegistered(RuleCtx &ctx)
{
    if (!startsWith(ctx.relpath, "src/dramcache/") ||
        relExtension(ctx.relpath) != ".cc")
        return;

    static const std::regex derives(R"(public\s+DramCacheOrg\b)");
    static const std::regex registers(
        R"(\bBMC_REGISTER_SCHEMES\s*\()");

    const auto firstMatch = [](const SourceView &v,
                               const std::regex &re) -> int {
        for (std::size_t i = 0; i < v.code.size(); ++i)
            if (std::regex_search(v.code[i], re))
                return static_cast<int>(i);
        return -1;
    };

    int line0 = firstMatch(ctx.view, derives);
    if (line0 < 0) {
        // The class declaration usually lives in the sibling header;
        // anchor the finding at the top of the .cc in that case.
        if (!ctx.sibling || firstMatch(*ctx.sibling, derives) < 0)
            return; // no organization defined here
        line0 = 0;
    }
    if (firstMatch(ctx.view, registers) >= 0)
        return;

    emit(ctx, static_cast<std::size_t>(line0), "scheme-registered",
         "DRAM cache organization is never registered with the "
         "scheme registry; add BMC_REGISTER_SCHEMES(...) to this "
         "file so bmcsim/bmcsweep/bmcfuzz and the registry-driven "
         "tests can reach it");
}

// --------------------------------------------- ckpt fingerprint

/** Render a 64-bit hash the way checkpoint.hh pins it. */
std::string
hashHex(std::uint64_t h)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

// ------------------------------------------------- tree walking

std::string
normalizeSlashes(std::string p)
{
    std::replace(p.begin(), p.end(), '\\', '/');
    return p;
}

bool
readFile(const std::filesystem::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

} // anonymous namespace

const std::vector<RuleInfo> &
ruleCatalog()
{
    static const std::vector<RuleInfo> rules = {
        {"no-wallclock",
         "wall-clock time sources in timing-model directories"},
        {"no-unseeded-rand",
         "unseeded randomness in timing-model directories"},
        {"no-unordered-iter",
         "unordered-container iteration in JSON-emitting files"},
        {"no-naked-new",
         "naked new/malloc in event-path files"},
        {"header-guard",
         "include guards must follow the BMC_<PATH>_HH convention"},
        {"stats-printed",
         "RunStats fields must be serialized by statsToJson"},
        {"scheme-registered",
         "DramCacheOrg subclasses must register with the scheme "
         "registry"},
        {"ckpt-versioned",
         "serialized-field changes must re-pin kCheckpointSchemaHash "
         "(and bump kCheckpointVersion)"},
    };
    return rules;
}

bool
knownRule(const std::string &id)
{
    for (const RuleInfo &r : ruleCatalog())
        if (id == r.id)
            return true;
    return false;
}

std::vector<Finding>
lintSource(const std::string &relpath, const std::string &content,
           const std::string &sibling_header, const Options &opts)
{
    const std::string rel = normalizeSlashes(relpath);
    const SourceView view = preprocess(content);
    SourceView sibView;
    const SourceView *sibling = nullptr;
    if (!sibling_header.empty()) {
        sibView = preprocess(sibling_header);
        sibling = &sibView;
    }

    std::vector<Finding> findings;
    RuleCtx ctx{rel, view, sibling, findings};

    const auto enabled = [&](const char *id) {
        if (opts.onlyRules.empty())
            return true;
        return std::find(opts.onlyRules.begin(),
                         opts.onlyRules.end(),
                         id) != opts.onlyRules.end();
    };

    if (enabled("no-wallclock"))
        ruleNoWallclock(ctx);
    if (enabled("no-unseeded-rand"))
        ruleNoUnseededRand(ctx);
    if (enabled("no-unordered-iter"))
        ruleNoUnorderedIter(ctx);
    if (enabled("no-naked-new"))
        ruleNoNakedNew(ctx);
    if (enabled("header-guard"))
        ruleHeaderGuard(ctx);
    if (enabled("scheme-registered"))
        ruleSchemeRegistered(ctx);

    // Apply suppressions, then order by line for stable output.
    const Suppressions sup = parseSuppressions(view);
    std::vector<Finding> kept;
    for (Finding &f : findings) {
        if (!sup.covers(f.line, f.rule))
            kept.push_back(std::move(f));
    }
    std::stable_sort(kept.begin(), kept.end(),
                     [](const Finding &a, const Finding &b) {
                         return a.line < b.line;
                     });
    return kept;
}

std::vector<Finding>
lintStatsPrinted(const std::string &decl_path,
                 const std::string &decl_content,
                 const std::string &printer_content)
{
    const SourceView decl = preprocess(decl_content);
    const SourceView printer = preprocess(printer_content);

    std::string printerCode;
    for (const std::string &line : printer.code) {
        printerCode += line;
        printerCode += '\n';
    }

    std::vector<Finding> findings;

    // Locate `struct RunStats { ... };` and walk its braces.
    static const std::regex structRe(R"(\bstruct\s+RunStats\b)");
    static const std::regex fieldRe(
        R"(([A-Za-z_]\w*)\s*(?:=[^;]*)?;\s*$)");
    int depth = 0;
    bool inStruct = false;
    for (std::size_t i = 0; i < decl.code.size(); ++i) {
        const std::string &line = decl.code[i];
        if (!inStruct) {
            if (std::regex_search(line, structRe))
                inStruct = true;
            if (!inStruct)
                continue;
        }
        for (const char c : line) {
            if (c == '{')
                ++depth;
            else if (c == '}')
                --depth;
        }
        if (inStruct && depth == 0 &&
            line.find('}') != std::string::npos)
            break; // end of struct

        if (depth != 1)
            continue; // nested scopes / before the opening brace
        std::smatch m;
        if (!std::regex_search(line, m, fieldRe))
            continue;
        const std::string field = m[1].str();
        const std::regex useRe("\\b" + field + "\\b");
        if (!std::regex_search(printerCode, useRe)) {
            Finding f;
            f.file = normalizeSlashes(decl_path);
            f.line = static_cast<int>(i) + 1;
            f.rule = "stats-printed";
            f.message =
                "RunStats field '" + field +
                "' is never referenced by the serializer (" +
                kStatsPrinter +
                "); add it to statsToJson or drop the field";
            findings.push_back(std::move(f));
        }
    }

    const Suppressions sup = parseSuppressions(decl);
    std::vector<Finding> kept;
    for (Finding &f : findings)
        if (!sup.covers(f.line, f.rule))
            kept.push_back(std::move(f));
    return kept;
}

std::uint64_t
ckptSchemaFingerprint(
    const std::vector<std::pair<std::string, std::string>> &files)
{
    // Same FNV-1a parameters as the checkpoint file checksum.
    constexpr std::uint64_t kOffset = 14695981039346656037ULL;
    constexpr std::uint64_t kPrime = 1099511628211ULL;

    std::vector<std::pair<std::string, std::string>> sorted = files;
    std::sort(sorted.begin(), sorted.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });

    static const std::regex serializerRef(R"(\bBinWriter|\bBinReader)");
    static const std::regex fieldCall(
        R"((\.|->)\s*(u8|u16|u32|u64|f64|str|bytes)\s*\()");

    std::uint64_t h = kOffset;
    const auto feed = [&](const std::string &s) {
        for (const char c : s) {
            h ^= static_cast<unsigned char>(c);
            h *= kPrime;
        }
    };

    for (const auto &[rel, content] : sorted) {
        const SourceView view = preprocess(content);
        bool touches = false;
        for (const std::string &line : view.code) {
            if (std::regex_search(line, serializerRef)) {
                touches = true;
                break;
            }
        }
        if (!touches)
            continue;
        for (const std::string &line : view.code) {
            if (!std::regex_search(line, fieldCall))
                continue;
            // Whitespace-insensitive so reformatting never trips
            // the rule; order-sensitive so field moves always do.
            feed(normalizeSlashes(rel));
            feed(":");
            for (const char c : line) {
                if (std::isspace(static_cast<unsigned char>(c)))
                    continue;
                h ^= static_cast<unsigned char>(c);
                h *= kPrime;
            }
            feed("\n");
        }
    }
    return h;
}

std::vector<Finding>
lintCkptVersioned(
    const std::vector<std::pair<std::string, std::string>> &files,
    const std::string &pin_path, const std::string &pin_content)
{
    const std::uint64_t have = ckptSchemaFingerprint(files);

    std::vector<Finding> findings;
    const SourceView pinView = preprocess(pin_content);

    static const std::regex pinRe(
        R"(kCheckpointSchemaHash\s*=\s*0[xX]([0-9a-fA-F']+))");
    std::uint64_t want = 0;
    int pinLine = 0; // 1-based; 0 = not found
    for (std::size_t i = 0; i < pinView.code.size(); ++i) {
        std::smatch m;
        if (!std::regex_search(pinView.code[i], m, pinRe))
            continue;
        std::string digits = m[1].str();
        digits.erase(std::remove(digits.begin(), digits.end(), '\''),
                     digits.end());
        want = std::stoull(digits, nullptr, 16);
        pinLine = static_cast<int>(i) + 1;
        break;
    }

    if (pinLine == 0) {
        Finding f;
        f.file = normalizeSlashes(pin_path);
        f.line = 0;
        f.rule = "ckpt-versioned";
        f.message = "no `kCheckpointSchemaHash = 0x...` pin found; "
                    "pin the serialized-field fingerprint " +
                    hashHex(have) +
                    " so layout changes are caught at lint time";
        findings.push_back(std::move(f));
    } else if (want != have) {
        Finding f;
        f.file = normalizeSlashes(pin_path);
        f.line = pinLine;
        f.rule = "ckpt-versioned";
        f.message =
            "serialized-field fingerprint is " + hashHex(have) +
            " but kCheckpointSchemaHash pins " + hashHex(want) +
            "; the checkpoint byte layout changed -- bump "
            "kCheckpointVersion if files written before this change "
            "are now unreadable, then re-pin kCheckpointSchemaHash "
            "to " +
            hashHex(have);
        findings.push_back(std::move(f));
    }

    const Suppressions sup = parseSuppressions(pinView);
    std::vector<Finding> kept;
    for (Finding &f : findings)
        if (!sup.covers(f.line, f.rule))
            kept.push_back(std::move(f));
    return kept;
}

std::vector<Finding>
lintTree(const Options &opts, const std::vector<std::string> &paths,
         std::size_t *files_scanned)
{
    namespace fs = std::filesystem;
    const fs::path root(opts.root);

    // Collect candidate files, sorted for deterministic output.
    std::set<std::string> files;
    for (const std::string &p : paths) {
        const fs::path abs = root / p;
        std::error_code ec;
        if (fs::is_directory(abs, ec)) {
            for (auto it = fs::recursive_directory_iterator(abs, ec);
                 !ec && it != fs::recursive_directory_iterator();
                 ++it) {
                if (!it->is_regular_file())
                    continue;
                const std::string ext =
                    it->path().extension().string();
                if (ext != ".cc" && ext != ".hh")
                    continue;
                files.insert(normalizeSlashes(
                    fs::relative(it->path(), root).string()));
            }
        } else if (fs::is_regular_file(abs, ec)) {
            files.insert(normalizeSlashes(p));
        } else {
            bmc_fatal("bmclint: no such file or directory: %s",
                      abs.string().c_str());
        }
    }

    if (files_scanned)
        *files_scanned = files.size();

    std::vector<Finding> findings;
    for (const std::string &rel : files) {
        std::string content;
        if (!readFile(root / rel, content)) {
            bmc_fatal("bmclint: cannot read %s", rel.c_str());
        }
        std::string sibling;
        if (relExtension(rel) == ".cc") {
            const std::string hh =
                rel.substr(0, rel.size() - 3) + ".hh";
            readFile(root / hh, sibling); // best effort
        }
        auto f = lintSource(rel, content, sibling, opts);
        findings.insert(findings.end(),
                        std::make_move_iterator(f.begin()),
                        std::make_move_iterator(f.end()));
    }

    const auto enabled = [&](const char *id) {
        if (opts.onlyRules.empty())
            return true;
        return std::find(opts.onlyRules.begin(),
                         opts.onlyRules.end(),
                         id) != opts.onlyRules.end();
    };
    if (enabled("stats-printed")) {
        std::string decl, printer;
        if (readFile(root / kStatsDecl, decl) &&
            readFile(root / kStatsPrinter, printer)) {
            auto f = lintStatsPrinted(kStatsDecl, decl, printer);
            findings.insert(findings.end(),
                            std::make_move_iterator(f.begin()),
                            std::make_move_iterator(f.end()));
        }
    }
    if (enabled("ckpt-versioned")) {
        // Whole-project rule over src/ regardless of the path
        // arguments, like stats-printed: the fingerprint is only
        // meaningful over the complete serializer set.
        std::string pin;
        if (readFile(root / kCkptPin, pin)) {
            std::vector<std::pair<std::string, std::string>> srcs;
            std::error_code ec;
            for (auto it = fs::recursive_directory_iterator(
                     root / "src", ec);
                 !ec && it != fs::recursive_directory_iterator();
                 ++it) {
                if (!it->is_regular_file())
                    continue;
                const std::string ext =
                    it->path().extension().string();
                if (ext != ".cc" && ext != ".hh")
                    continue;
                std::string content;
                if (readFile(it->path(), content))
                    srcs.emplace_back(
                        normalizeSlashes(
                            fs::relative(it->path(), root).string()),
                        std::move(content));
            }
            auto f = lintCkptVersioned(srcs, kCkptPin, pin);
            findings.insert(findings.end(),
                            std::make_move_iterator(f.begin()),
                            std::make_move_iterator(f.end()));
        }
    }
    return findings;
}

std::string
findingsToJson(const std::vector<Finding> &findings,
               std::size_t files_scanned)
{
    auto escape = [](const std::string &s) {
        std::string out;
        out.reserve(s.size());
        for (const char c : s) {
            switch (c) {
              case '"':
                out += "\\\"";
                break;
              case '\\':
                out += "\\\\";
                break;
              case '\n':
                out += "\\n";
                break;
              case '\t':
                out += "\\t";
                break;
              default:
                out += c;
            }
        }
        return out;
    };

    std::string out = "{\"bmclint_schema\": 1, \"files_scanned\": ";
    out += std::to_string(files_scanned);
    out += ", \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        if (i)
            out += ", ";
        out += "{\"file\": \"" + escape(f.file) + "\", ";
        out += "\"line\": " + std::to_string(f.line) + ", ";
        out += "\"rule\": \"" + escape(f.rule) + "\", ";
        out += "\"message\": \"" + escape(f.message) + "\"}";
    }
    out += "], \"summary\": {\"findings\": ";
    out += std::to_string(findings.size());
    out += "}}";
    return out;
}

} // namespace bmc::lint
