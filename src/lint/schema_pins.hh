/**
 * @file
 * Pinned schema fingerprints for the schema-drift rule.
 *
 * One row per versioned on-disk format (the same set EXPERIMENTS.md's
 * schema-version registry documents). `version` mirrors the in-code
 * version constant; `fingerprint` is the FNV-1a hash over the
 * format's emitted JSON keys (or binio field-call sequence) as
 * extracted from the serializer source by schemaFormatFingerprint().
 *
 * Changing what a serializer emits changes the fingerprint and makes
 * `bmclint` fail until this table is consciously re-pinned -- and the
 * rule insists the version constant moves whenever the fingerprint
 * moves, so a field can never be added silently. The failing finding
 * prints the new fingerprint to paste here.
 */

#ifndef BMC_LINT_SCHEMA_PINS_HH
#define BMC_LINT_SCHEMA_PINS_HH

#include <cstdint>

namespace bmc::lint
{

struct SchemaPin
{
    const char *format;
    unsigned version;
    std::uint64_t fingerprint;
};

constexpr SchemaPin kSchemaPins[] = {
    {"results-jsonl", 4, 0xe13c3714c76db5d1},
    {"epoch-row", 1, 0x49a71bb75080e373},
    {"trace-json", 1, 0x42f696dc927bc52f},
    {"checkpoint", 1, 0x6f6221c1ecdae9cb},
    {"catalog-index", 1, 0x1e784c4c055466b7},
    {"serve-protocol", 1, 0x10f45f2b63cb1386},
    {"serve-jobspec", 1, 0xab2784780704a640},
    {"serve-journal", 1, 0x282091720f5210b1},
    {"serve-fuzz-row", 1, 0xfb12163902acc3ce},
};

} // namespace bmc::lint

#endif // BMC_LINT_SCHEMA_PINS_HH
