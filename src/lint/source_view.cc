#include "lint/source_view.hh"

#include <cctype>
#include <regex>
#include <sstream>

namespace bmc::lint
{

namespace
{

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Distinguish a char literal's opening quote from a digit separator
 * (1'000'000). A quote directly after an identifier char or digit is
 * a separator.
 */
bool
looksLikeCharLiteral(const std::string &codeLine)
{
    if (codeLine.empty())
        return true;
    return !isIdentChar(codeLine.back());
}

/** The identifier (if any) ending at the back of @p codeLine. */
std::string
trailingIdent(const std::string &codeLine)
{
    std::size_t b = codeLine.size();
    while (b > 0 && isIdentChar(codeLine[b - 1]))
        --b;
    return codeLine.substr(b);
}

/** True when an identifier directly before a `"` makes it open a raw
 *  string literal. The prefix must be exactly one of the five raw
 *  forms -- `xR"..."` is an ordinary string named by macro/UDL rules. */
bool
isRawStringPrefix(const std::string &ident)
{
    return ident == "R" || ident == "uR" || ident == "UR" ||
           ident == "LR" || ident == "u8R";
}

/** Count trailing backslashes; an odd number splices the next line. */
bool
endsWithLineSplice(const std::string &rawLine)
{
    std::size_t k = 0;
    for (auto it = rawLine.rbegin();
         it != rawLine.rend() && *it == '\\'; ++it)
        ++k;
    return (k % 2) == 1;
}

} // anonymous namespace

SourceView
preprocess(const std::string &content)
{
    SourceView v;
    v.raw.emplace_back();
    v.code.emplace_back();
    v.text.emplace_back();

    enum class State
    {
        Normal,
        LineComment,
        BlockComment,
        String,
        Char,
        RawString,
    };
    State st = State::Normal;
    std::string rawDelim; // raw-string closing delimiter ')delim"'

    const std::size_t n = content.size();
    for (std::size_t i = 0; i < n; ++i) {
        const char c = content[i];
        const char nx = i + 1 < n ? content[i + 1] : '\0';

        if (c == '\n') {
            // A `//` comment normally dies at end of line -- unless
            // the line ends in a splice (backslash-newline), which
            // the phase-2 splice drags the comment across. Macro
            // bodies continued with `\` inside a comment hit this.
            if (st == State::LineComment &&
                !endsWithLineSplice(v.raw.back()))
                st = State::Normal;
            v.raw.emplace_back();
            v.code.emplace_back();
            v.text.emplace_back();
            continue;
        }
        v.raw.back() += c;

        switch (st) {
          case State::Normal:
            if (c == '/' && nx == '/') {
                st = State::LineComment;
                v.code.back() += ' ';
                v.text.back() += ' ';
            } else if (c == '/' && nx == '*') {
                st = State::BlockComment;
                v.code.back() += ' ';
                v.text.back() += ' ';
            } else if (c == '"' &&
                       isRawStringPrefix(
                           trailingIdent(v.code.back())) &&
                       !trailingIdent(v.code.back()).empty()) {
                // R"delim( ... )delim" -- also uR/UR/LR/u8R. The
                // prefix identifier was already emitted as code.
                std::size_t j = i + 1;
                std::string delim;
                while (j < n && content[j] != '(' &&
                       content[j] != '\n')
                    delim += content[j++];
                rawDelim = ")" + delim + "\"";
                st = State::RawString;
                v.code.back() += ' ';
                v.text.back() += c;
            } else if (c == '"') {
                st = State::String;
                v.code.back() += ' ';
                v.text.back() += c;
            } else if (c == '\'' &&
                       looksLikeCharLiteral(v.code.back())) {
                st = State::Char;
                v.code.back() += ' ';
                v.text.back() += c;
            } else if (c == '%' && nx == ':') {
                // %: and %:%: digraphs -> # / ##
                if (content.compare(i, 4, "%:%:") == 0) {
                    v.raw.back() += content.substr(i + 1, 3);
                    v.text.back() += content.substr(i, 4);
                    v.code.back() += "##  ";
                    i += 3;
                } else {
                    v.raw.back() += nx;
                    v.text.back() += c;
                    v.text.back() += nx;
                    v.code.back() += "# ";
                    ++i;
                }
            } else if (c == '<' && nx == '%') {
                v.raw.back() += nx;
                v.text.back() += c;
                v.text.back() += nx;
                v.code.back() += "{ ";
                ++i;
            } else if (c == '%' && nx == '>') {
                v.raw.back() += nx;
                v.text.back() += c;
                v.text.back() += nx;
                v.code.back() += "} ";
                ++i;
            } else if (c == ':' && nx == '>') {
                v.raw.back() += nx;
                v.text.back() += c;
                v.text.back() += nx;
                v.code.back() += "] ";
                ++i;
            } else if (c == '<' && nx == ':' &&
                       !(i + 2 < n && content[i + 2] == ':' &&
                         (i + 3 >= n ||
                          (content[i + 3] != ':' &&
                           content[i + 3] != '>')))) {
                // `<:` digraph -> `[`, except the maximal-munch
                // carve-out: in `<::` the `<` stands alone (think
                // `std::vector<::Foo>`) unless a third `:` or a `>`
                // follows.
                v.raw.back() += nx;
                v.text.back() += c;
                v.text.back() += nx;
                v.code.back() += "[ ";
                ++i;
            } else {
                v.code.back() += c;
                v.text.back() += c;
            }
            break;
          case State::LineComment:
            v.code.back() += ' ';
            v.text.back() += ' ';
            break;
          case State::BlockComment:
            if (c == '*' && nx == '/') {
                v.code.back() += "  ";
                v.text.back() += "  ";
                v.raw.back() += nx;
                ++i;
                st = State::Normal;
            } else {
                v.code.back() += ' ';
                v.text.back() += ' ';
            }
            break;
          case State::String:
          case State::Char:
            if (c == '\\' && i + 1 < n && nx != '\n') {
                v.code.back() += "  ";
                v.text.back() += c;
                v.text.back() += nx;
                v.raw.back() += nx;
                ++i;
            } else {
                v.code.back() += ' ';
                v.text.back() += c;
                if ((st == State::String && c == '"') ||
                    (st == State::Char && c == '\''))
                    st = State::Normal;
            }
            break;
          case State::RawString:
            if (c == ')' &&
                content.compare(i, rawDelim.size(), rawDelim) == 0) {
                v.code.back() += ' ';
                v.text.back() += c;
                for (std::size_t k = 1; k < rawDelim.size(); ++k) {
                    v.raw.back() += content[i + k];
                    v.code.back() += ' ';
                    v.text.back() += content[i + k];
                }
                i += rawDelim.size() - 1;
                st = State::Normal;
            } else {
                v.code.back() += ' ';
                v.text.back() += c;
            }
            break;
        }
    }
    return v;
}

Suppressions
parseSuppressions(const SourceView &v)
{
    static const std::regex re(
        R"(bmclint:allow\(([A-Za-z0-9_*, -]+)\))");
    Suppressions sup;
    sup.allowed.resize(v.raw.size());
    for (std::size_t i = 0; i < v.raw.size(); ++i) {
        auto begin = std::sregex_iterator(v.raw[i].begin(),
                                          v.raw[i].end(), re);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            std::stringstream ss((*it)[1].str());
            std::string id;
            while (std::getline(ss, id, ',')) {
                const auto a = id.find_first_not_of(" \t");
                const auto b = id.find_last_not_of(" \t");
                if (a != std::string::npos)
                    sup.allowed[i].insert(id.substr(a, b - a + 1));
            }
        }
    }
    return sup;
}

std::set<std::string>
unorderedNames(const SourceView &view)
{
    std::set<std::string> names;
    const std::regex decl(R"(unordered_(?:map|set)\s*<)");
    for (const std::string &line : view.code) {
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            decl);
             it != std::sregex_iterator(); ++it) {
            // Skip the balanced template argument list, then read
            // the declared identifier. Declarations whose argument
            // list spans lines are matched when the name appears on
            // a later line next to the closing '>' -- rare in this
            // tree, where declarations are single-statement.
            std::size_t pos = static_cast<std::size_t>(
                it->position() + it->length());
            int depth = 1;
            while (pos < line.size() && depth > 0) {
                if (line[pos] == '<')
                    ++depth;
                else if (line[pos] == '>')
                    --depth;
                ++pos;
            }
            if (depth != 0)
                continue;
            std::smatch m;
            const std::string rest = line.substr(pos);
            static const std::regex ident(
                R"(^\s*&?\s*([A-Za-z_]\w*)\s*[;={(])");
            if (std::regex_search(rest, m, ident))
                names.insert(m[1].str());
        }
    }
    return names;
}

} // namespace bmc::lint
