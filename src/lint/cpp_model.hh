/**
 * @file
 * Approximate C++ semantic model for bmclint -- no libclang, same
 * zero-dependency philosophy as the flat rules.
 *
 * The model tokenizes each translation unit's comment/string-blanked
 * `code` view (source_view.hh), indexes function and method
 * definitions, records every call site inside them, and links calls
 * to definitions by bare name across the whole repo. The result is
 * an approximate call graph: good enough to chase a wall-clock value
 * through three helpers into a serializer, or a lock acquisition
 * into a callee -- and honest about what it is not (no overload
 * resolution, no templates, no virtual dispatch; a call resolves to
 * EVERY definition sharing its name).
 *
 * Heuristics, stated so their failure modes are reviewable:
 *
 *  - A definition is an identifier followed by `(` whose balanced
 *    parameter list is followed (after const/noexcept/override/
 *    trailing-return/ctor-init-list) by `{`. Declarations end in
 *    `;`, `= default`, `= delete` and are skipped.
 *  - Preprocessor lines (and their `\` continuations) are skipped
 *    entirely; macro bodies are not modelled.
 *  - Qualified definitions (`Server::flushRow`) take their class
 *    from the written qualifier; in-class bodies take it from the
 *    enclosing class/struct.
 *  - Calls inside a body attribute to the innermost enclosing
 *    definition; calls at namespace scope are dropped.
 *
 * Consumers: det-taint, lock-order and schema-drift in linter.cc.
 */

#ifndef BMC_LINT_CPP_MODEL_HH
#define BMC_LINT_CPP_MODEL_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/source_view.hh"

namespace bmc::lint
{

/** One call site inside a function body. */
struct CallSite
{
    std::string name;      //!< bare callee name
    int line = 0;          //!< 1-based
    bool hasReceiver = false; //!< written as x.name(...) / x->name(...)
    std::string receiver;  //!< receiver identifier ("" when complex)
    std::string qualifier; //!< `a::b` chain before the name, if any
    std::string argHead;   //!< first few argument tokens, joined
};

/** One function or method definition. */
struct FunctionDef
{
    std::string name;      //!< bare name
    std::string qualified; //!< Class::name when the class is known
    std::string file;      //!< root-relative path
    int line = 0;          //!< 1-based, name token
    int bodyLine = 0;      //!< 1-based, opening `{`
    int endLine = 0;       //!< 1-based, closing `}`
    std::vector<CallSite> calls;
};

/** Per-file artifacts every semantic rule needs. */
struct FileModel
{
    std::string path;
    SourceView view;
    Suppressions sup;
    /** Brace depth at the start of each 0-based line (digraphs were
     *  canonicalized by preprocess, so counting braces is exact). */
    std::vector<int> depthAtLineStart;
};

/**
 * The repo-wide model: files, definitions, and the name index that
 * turns call sites into graph edges.
 */
class CppModel
{
  public:
    /** Parse @p content and add it to the model. */
    void addFile(const std::string &relpath,
                 const std::string &content);

    const std::vector<FunctionDef> &
    functions() const
    {
        return funcs_;
    }

    /** File lookup; nullptr when the path was never added. */
    const FileModel *file(const std::string &relpath) const;

    const std::map<std::string, FileModel> &
    files() const
    {
        return files_;
    }

    /** Indices into functions() of every definition named @p name. */
    std::vector<int> resolve(const std::string &name) const;

    /** Indices of definitions named @p name inside @p relpath. */
    std::vector<int> resolveIn(const std::string &relpath,
                               const std::string &name) const;

    /** Identifiers declared as a deferred callable anywhere in the
     *  repo (std::function / InplaceFunction members and locals).
     *  lock-order flags invoking one of these under a held lock. */
    const std::set<std::string> &
    callableNames() const
    {
        return callables_;
    }

    /** True when @p sup covers a finding at (file, line). */
    bool suppressed(const std::string &relpath, int line,
                    const std::string &rule) const;

  private:
    std::map<std::string, FileModel> files_;
    std::vector<FunctionDef> funcs_;
    std::map<std::string, std::vector<int>> byName_;
    std::set<std::string> callables_;
};

} // namespace bmc::lint

#endif // BMC_LINT_CPP_MODEL_HH
