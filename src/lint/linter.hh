/**
 * @file
 * bmclint -- source-level linter for the project's determinism and
 * event-kernel invariants.
 *
 * The simulator's correctness contract has parts no runtime test can
 * see locally: bit-identical -jN sweep output, no wall-clock or
 * unseeded randomness feeding simulated state, the pooled event
 * node's inline capture budget, and curated stats actually reaching
 * the serializers. bmclint is a token/regex scanner (no libclang)
 * over the tree that machine-checks the lexical side of those
 * contracts before every merge; the runtime checkers in src/check
 * cover the semantic side.
 *
 * Rules (ids are stable; see ruleCatalog()):
 *
 *   no-wallclock     std::chrono / time() / clock_gettime family in
 *                    the timing-model directories (src/sim, src/dram,
 *                    src/dramcache, src/cache). Wall time must never
 *                    influence simulated state; wall-clock telemetry
 *                    goes through common/wallclock.hh instead.
 *   no-unseeded-rand std::rand / srand / std::random_device /
 *                    default_random_engine in the same directories.
 *                    All randomness flows from the seeded xoshiro
 *                    streams (common/rng.hh, trace generators).
 *   no-unordered-iter  iteration (range-for / .begin()) over a
 *                    std::unordered_map/unordered_set in any file
 *                    that emits JSON/JSONL. Hash-table iteration
 *                    order is implementation- and run-dependent; it
 *                    breaks golden-stats diffs and -jN bit-identity.
 *                    Keyed lookups (find/count/insert/erase) are fine.
 *   no-naked-new     naked `new` / malloc-family calls in event-path
 *                    files (event kernel, channels, DRAM-cache
 *                    controller, MSHR). Steady-state event code
 *                    recycles pooled storage; explicit boxing goes
 *                    through owning smart pointers.
 *   header-guard     every header carries an include guard named
 *                    BMC_<RELPATH>_HH (path with the leading src/
 *                    stripped); #pragma once is flagged as
 *                    inconsistent with the convention.
 *   stats-printed    every field of sim::RunStats (src/sim/metrics.hh)
 *                    is referenced by the serializer translation unit
 *                    (src/sim/metrics.cc). A stat that is collected
 *                    but never printed is dead telemetry -- and
 *                    invisible to the golden-stats regression net.
 *   scheme-registered  every src/dramcache .cc whose class derives
 *                    from DramCacheOrg must call
 *                    BMC_REGISTER_SCHEMES(...). An orphan org is
 *                    invisible to bmcsim --scheme, the sweep matrix,
 *                    the fuzzer's scheme enumeration and the
 *                    registry-driven test suites.
 *   ckpt-versioned   the checkpoint byte layout is fingerprinted:
 *                    an FNV-1a hash over every BinWriter/BinReader
 *                    field call (.u8/.u16/.u32/.u64/.f64/.str/.bytes)
 *                    in src/ files that mention BinWriter/BinReader,
 *                    in sorted-path order. The hash must equal
 *                    kCheckpointSchemaHash in src/sim/checkpoint.hh.
 *                    Adding, removing or reordering a serialized
 *                    field changes the fingerprint and forces a
 *                    conscious re-pin -- and a kCheckpointVersion
 *                    bump whenever the on-disk layout really changed,
 *                    so stale checkpoint files fail loudly instead of
 *                    deserializing garbage.
 *
 * Semantic rules (cpp_model.hh builds an approximate repo-wide call
 * graph; these three run over it, with call-path evidence attached
 * to every finding):
 *
 *   det-taint        interprocedural determinism taint. Sources --
 *                    wallNow/wallSecondsSince (common/wallclock.hh,
 *                    the single audited wall-clock entry), C rand
 *                    family / random_device / chrono clocks,
 *                    unordered-container iteration, pointer-identity
 *                    formatting (%p, reinterpret_cast to uintptr_t)
 *                    -- must not reach a serialization sink
 *                    (statsToJson, the sweep/epoch/trace/catalog
 *                    JSONL emitters, BinWriter framing, serve row
 *                    streaming) through ANY call path. Findings
 *                    print the chain: source -> f -> g -> sink.
 *                    `// bmclint:sink` and `// bmclint:taint-source`
 *                    markers extend the audited sets in place.
 *   schema-drift     every versioned on-disk format's emitted JSON
 *                    keys (or binio field-call sequence) are
 *                    extracted from its serializer functions and
 *                    fingerprinted. The fingerprint must match
 *                    src/lint/schema_pins.hh, the pinned version
 *                    must match the in-code version constant, and
 *                    the EXPERIMENTS.md schema-version registry row
 *                    must agree -- so adding a field without a
 *                    version bump or doc update fails bmclint_tree.
 *   lock-order       static lock-acquisition graph over std::mutex
 *                    guards in src/serve/, the thread pool, and the
 *                    sweep heartbeat. Cycles in the may-acquire
 *                    graph (interprocedural, scope-precise), calls
 *                    to blocking primitives while holding a lock,
 *                    and invoking an opaque std::function-typed
 *                    callable under a lock are findings; condition-
 *                    variable waits are exempt (they release).
 *
 * Suppressions: a finding is silenced by `// bmclint:allow(rule-id)`
 * (comma-separated ids, or `*`) on the finding's line or on the line
 * directly above it. Suppressions are meant to carry a justification
 * comment; the clean-tree gate reviews them by grep.
 */

#ifndef BMC_LINT_LINTER_HH
#define BMC_LINT_LINTER_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace bmc::lint
{

class CppModel;

/** One rule violation. */
struct Finding
{
    std::string file; //!< path relative to the project root
    int line = 0;     //!< 1-based; 0 = whole-file finding
    std::string rule;
    std::string message;
    /** Call-path evidence for semantic findings: source first, sink
     *  last (det-taint), or the lock cycle's nodes (lock-order).
     *  Empty for flat per-line rules. */
    std::vector<std::string> path;
};

/** Stable rule id plus a one-line summary (--list-rules). */
struct RuleInfo
{
    const char *id;
    const char *summary;
};

/** Every rule bmclint knows, in stable documentation order. */
const std::vector<RuleInfo> &ruleCatalog();

/** True when @p id names a rule in ruleCatalog(). */
bool knownRule(const std::string &id);

struct Options
{
    /** Project root; rule scoping tables are relative to it. */
    std::string root = ".";
    /** When non-empty, only these rule ids run. */
    std::vector<std::string> onlyRules;
};

/**
 * Lint one in-memory source file. @p relpath is the root-relative
 * path (forward slashes) used for rule scoping; @p sibling_header
 * optionally supplies the content of the matching .hh so container
 * declarations in the header are visible when linting the .cc.
 * Exposed separately so tests can feed known-bad snippets per rule.
 */
std::vector<Finding> lintSource(const std::string &relpath,
                                const std::string &content,
                                const std::string &sibling_header = "",
                                const Options &opts = {});

/**
 * The stats-printed rule: every RunStats field declared in
 * @p decl_content (at @p decl_path) must be referenced by
 * @p printer_content. Split out so tests can drive it directly.
 */
std::vector<Finding> lintStatsPrinted(const std::string &decl_path,
                                      const std::string &decl_content,
                                      const std::string &printer_content);

/**
 * The ckpt-versioned fingerprint: FNV-1a (offset/prime as
 * common/binio.hh's checksum) over every serializer field call in
 * @p files -- (root-relative path, content) pairs, hashed in sorted
 * path order. Files whose code never mentions BinWriter/BinReader
 * contribute nothing. Exposed so tests can pin known fixtures and so
 * the finding message can tell the developer the value to re-pin.
 */
std::uint64_t ckptSchemaFingerprint(
    const std::vector<std::pair<std::string, std::string>> &files);

/**
 * The ckpt-versioned rule: the fingerprint of @p files must equal
 * the `kCheckpointSchemaHash = 0x...` pin inside @p pin_content (at
 * @p pin_path, normally src/sim/checkpoint.hh). Split out so tests
 * can drive it with fixture trees.
 */
std::vector<Finding> lintCkptVersioned(
    const std::vector<std::pair<std::string, std::string>> &files,
    const std::string &pin_path, const std::string &pin_content);

// ------------------------------------------------ semantic rules

/**
 * det-taint over @p model: no determinism-taint source may reach a
 * serialization sink through any call path. Sinks are the built-in
 * audited set (see linter.cc's kTaintSinks) plus any definition
 * carrying a `// bmclint:sink` marker; sources are the wallclock.hh
 * entry points, intrinsic non-deterministic calls, unordered-
 * container iteration, pointer-identity formatting, and
 * `// bmclint:taint-source` markers. Suppressions from the model's
 * files are already applied.
 */
std::vector<Finding> lintDetTaint(const CppModel &model);

/** One versioned on-disk format for schema-drift. */
struct SchemaFormatSpec
{
    std::string id;    //!< pin/registry key, e.g. "results-jsonl"
    bool binio = false; //!< binio field calls instead of JSON keys
    /** Serializer sources: "path" (whole file) or "path#function"
     *  (that function's body only, all same-name definitions). */
    std::vector<std::string> sources;
    std::string versionFile;    //!< where the version constant lives
    std::string versionPattern; //!< regex, capture 1 = the number
    std::string docKey; //!< substring locating the registry-table row
};

/** The repo's real format table (the 9 documented formats). */
const std::vector<SchemaFormatSpec> &schemaFormats();

/** A schema_pins.hh row in injectable form (tests pin fixtures). */
struct SchemaPinData
{
    std::string format;
    unsigned version = 0;
    std::uint64_t fingerprint = 0;
};

/** The compiled-in schema_pins.hh table. */
std::vector<SchemaPinData> defaultSchemaPins();

/** FNV-1a over @p spec's extracted key/field sequence in @p model. */
std::uint64_t schemaFormatFingerprint(const CppModel &model,
                                      const SchemaFormatSpec &spec);

/**
 * schema-drift over @p model: each format's fingerprint must match
 * its pin, the pinned version must match the in-code constant, and
 * -- when @p experiments_md is non-empty -- the EXPERIMENTS.md
 * registry row must carry the same version. Pass an empty
 * @p experiments_md to skip the doc check (fixture trees).
 */
std::vector<Finding>
lintSchemaDrift(const CppModel &model,
                const std::vector<SchemaFormatSpec> &formats,
                const std::vector<SchemaPinData> &pins,
                const std::string &experiments_md);

/** The directories/files lock-order audits on the real tree. */
const std::vector<std::string> &lockOrderScope();

/**
 * lock-order over @p model, for definitions in files matching a
 * @p scope prefix: builds the scope-precise lock-acquisition graph
 * (interprocedural via a may-acquire fixpoint) and flags cycles,
 * blocking calls under a lock, and opaque callables invoked under a
 * lock.
 */
std::vector<Finding>
lintLockOrder(const CppModel &model,
              const std::vector<std::string> &scope);

/**
 * Walk @p paths (files or directories, relative to opts.root),
 * lint every .cc/.hh, then run the whole-project rules (including
 * the semantic pass over src/).
 * @p files_scanned, when non-null, receives the file count.
 */
std::vector<Finding> lintTree(const Options &opts,
                              const std::vector<std::string> &paths,
                              std::size_t *files_scanned = nullptr);

/** Render findings as the documented JSON object (schema 2): adds
 *  per-finding call-path evidence and the machine-readable rule
 *  catalog next to the findings array. */
std::string findingsToJson(const std::vector<Finding> &findings,
                           std::size_t files_scanned);

/** Render findings as a SARIF 2.1.0 log (one run, driver bmclint). */
std::string findingsToSarif(const std::vector<Finding> &findings);

} // namespace bmc::lint

#endif // BMC_LINT_LINTER_HH
