/**
 * @file
 * bmclint -- source-level linter for the project's determinism and
 * event-kernel invariants.
 *
 * The simulator's correctness contract has parts no runtime test can
 * see locally: bit-identical -jN sweep output, no wall-clock or
 * unseeded randomness feeding simulated state, the pooled event
 * node's inline capture budget, and curated stats actually reaching
 * the serializers. bmclint is a token/regex scanner (no libclang)
 * over the tree that machine-checks the lexical side of those
 * contracts before every merge; the runtime checkers in src/check
 * cover the semantic side.
 *
 * Rules (ids are stable; see ruleCatalog()):
 *
 *   no-wallclock     std::chrono / time() / clock_gettime family in
 *                    the timing-model directories (src/sim, src/dram,
 *                    src/dramcache, src/cache). Wall time must never
 *                    influence simulated state; wall-clock telemetry
 *                    goes through common/wallclock.hh instead.
 *   no-unseeded-rand std::rand / srand / std::random_device /
 *                    default_random_engine in the same directories.
 *                    All randomness flows from the seeded xoshiro
 *                    streams (common/rng.hh, trace generators).
 *   no-unordered-iter  iteration (range-for / .begin()) over a
 *                    std::unordered_map/unordered_set in any file
 *                    that emits JSON/JSONL. Hash-table iteration
 *                    order is implementation- and run-dependent; it
 *                    breaks golden-stats diffs and -jN bit-identity.
 *                    Keyed lookups (find/count/insert/erase) are fine.
 *   no-naked-new     naked `new` / malloc-family calls in event-path
 *                    files (event kernel, channels, DRAM-cache
 *                    controller, MSHR). Steady-state event code
 *                    recycles pooled storage; explicit boxing goes
 *                    through owning smart pointers.
 *   header-guard     every header carries an include guard named
 *                    BMC_<RELPATH>_HH (path with the leading src/
 *                    stripped); #pragma once is flagged as
 *                    inconsistent with the convention.
 *   stats-printed    every field of sim::RunStats (src/sim/metrics.hh)
 *                    is referenced by the serializer translation unit
 *                    (src/sim/metrics.cc). A stat that is collected
 *                    but never printed is dead telemetry -- and
 *                    invisible to the golden-stats regression net.
 *   scheme-registered  every src/dramcache .cc whose class derives
 *                    from DramCacheOrg must call
 *                    BMC_REGISTER_SCHEMES(...). An orphan org is
 *                    invisible to bmcsim --scheme, the sweep matrix,
 *                    the fuzzer's scheme enumeration and the
 *                    registry-driven test suites.
 *   ckpt-versioned   the checkpoint byte layout is fingerprinted:
 *                    an FNV-1a hash over every BinWriter/BinReader
 *                    field call (.u8/.u16/.u32/.u64/.f64/.str/.bytes)
 *                    in src/ files that mention BinWriter/BinReader,
 *                    in sorted-path order. The hash must equal
 *                    kCheckpointSchemaHash in src/sim/checkpoint.hh.
 *                    Adding, removing or reordering a serialized
 *                    field changes the fingerprint and forces a
 *                    conscious re-pin -- and a kCheckpointVersion
 *                    bump whenever the on-disk layout really changed,
 *                    so stale checkpoint files fail loudly instead of
 *                    deserializing garbage.
 *
 * Suppressions: a finding is silenced by `// bmclint:allow(rule-id)`
 * (comma-separated ids, or `*`) on the finding's line or on the line
 * directly above it. Suppressions are meant to carry a justification
 * comment; the clean-tree gate reviews them by grep.
 */

#ifndef BMC_LINT_LINTER_HH
#define BMC_LINT_LINTER_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace bmc::lint
{

/** One rule violation. */
struct Finding
{
    std::string file; //!< path relative to the project root
    int line = 0;     //!< 1-based; 0 = whole-file finding
    std::string rule;
    std::string message;
};

/** Stable rule id plus a one-line summary (--list-rules). */
struct RuleInfo
{
    const char *id;
    const char *summary;
};

/** Every rule bmclint knows, in stable documentation order. */
const std::vector<RuleInfo> &ruleCatalog();

/** True when @p id names a rule in ruleCatalog(). */
bool knownRule(const std::string &id);

struct Options
{
    /** Project root; rule scoping tables are relative to it. */
    std::string root = ".";
    /** When non-empty, only these rule ids run. */
    std::vector<std::string> onlyRules;
};

/**
 * Lint one in-memory source file. @p relpath is the root-relative
 * path (forward slashes) used for rule scoping; @p sibling_header
 * optionally supplies the content of the matching .hh so container
 * declarations in the header are visible when linting the .cc.
 * Exposed separately so tests can feed known-bad snippets per rule.
 */
std::vector<Finding> lintSource(const std::string &relpath,
                                const std::string &content,
                                const std::string &sibling_header = "",
                                const Options &opts = {});

/**
 * The stats-printed rule: every RunStats field declared in
 * @p decl_content (at @p decl_path) must be referenced by
 * @p printer_content. Split out so tests can drive it directly.
 */
std::vector<Finding> lintStatsPrinted(const std::string &decl_path,
                                      const std::string &decl_content,
                                      const std::string &printer_content);

/**
 * The ckpt-versioned fingerprint: FNV-1a (offset/prime as
 * common/binio.hh's checksum) over every serializer field call in
 * @p files -- (root-relative path, content) pairs, hashed in sorted
 * path order. Files whose code never mentions BinWriter/BinReader
 * contribute nothing. Exposed so tests can pin known fixtures and so
 * the finding message can tell the developer the value to re-pin.
 */
std::uint64_t ckptSchemaFingerprint(
    const std::vector<std::pair<std::string, std::string>> &files);

/**
 * The ckpt-versioned rule: the fingerprint of @p files must equal
 * the `kCheckpointSchemaHash = 0x...` pin inside @p pin_content (at
 * @p pin_path, normally src/sim/checkpoint.hh). Split out so tests
 * can drive it with fixture trees.
 */
std::vector<Finding> lintCkptVersioned(
    const std::vector<std::pair<std::string, std::string>> &files,
    const std::string &pin_path, const std::string &pin_content);

/**
 * Walk @p paths (files or directories, relative to opts.root),
 * lint every .cc/.hh, then run the whole-project rules.
 * @p files_scanned, when non-null, receives the file count.
 */
std::vector<Finding> lintTree(const Options &opts,
                              const std::vector<std::string> &paths,
                              std::size_t *files_scanned = nullptr);

/** Render findings as the documented JSON object (schema 1). */
std::string findingsToJson(const std::vector<Finding> &findings,
                           std::size_t files_scanned);

} // namespace bmc::lint

#endif // BMC_LINT_LINTER_HH
