#include "lint/cpp_model.hh"

#include <algorithm>
#include <cctype>
#include <regex>

namespace bmc::lint
{

namespace
{

struct Token
{
    std::string text;
    int line = 0; //!< 1-based
    bool ident = false;
};

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Keywords that precede `(` without being calls or definitions. */
bool
isControlKeyword(const std::string &s)
{
    static const std::set<std::string> kw = {
        "if",       "for",        "while",     "switch",
        "catch",    "return",     "sizeof",    "alignof",
        "alignas",  "typeid",     "decltype",  "noexcept",
        "new",      "delete",     "throw",     "operator",
        "static_assert", "co_await", "co_return", "co_yield",
        "requires", "static_cast", "dynamic_cast",
        "const_cast", "reinterpret_cast", "defined", "assert",
    };
    return kw.count(s) != 0;
}

/** Tokenize the code view. Preprocessor lines (and their backslash
 *  continuations) are skipped whole: macro bodies are not modelled,
 *  and `#include <x>` must not look like comparisons. */
std::vector<Token>
tokenize(const SourceView &v)
{
    std::vector<Token> toks;
    bool inDirective = false;
    for (std::size_t li = 0; li < v.code.size(); ++li) {
        const std::string &line = v.code[li];
        const std::string &raw = v.raw[li];

        if (!inDirective) {
            const auto first = line.find_first_not_of(" \t");
            if (first != std::string::npos && line[first] == '#') {
                inDirective = true;
            }
        }
        if (inDirective) {
            // continue while lines end in a splice
            if (raw.empty() || raw.back() != '\\')
                inDirective = false;
            continue;
        }

        const int line1 = static_cast<int>(li) + 1;
        for (std::size_t i = 0; i < line.size();) {
            const char c = line[i];
            if (std::isspace(static_cast<unsigned char>(c))) {
                ++i;
                continue;
            }
            if (isIdentStart(c)) {
                std::size_t j = i + 1;
                while (j < line.size() && isIdentChar(line[j]))
                    ++j;
                toks.push_back({line.substr(i, j - i), line1, true});
                i = j;
                continue;
            }
            if (std::isdigit(static_cast<unsigned char>(c))) {
                // numbers (incl. 0x..., digit separators) carry no
                // structure the model needs; swallow them
                std::size_t j = i + 1;
                while (j < line.size() &&
                       (isIdentChar(line[j]) || line[j] == '.'))
                    ++j;
                i = j;
                continue;
            }
            const char nx = i + 1 < line.size() ? line[i + 1] : '\0';
            if ((c == ':' && nx == ':') || (c == '-' && nx == '>')) {
                toks.push_back(
                    {std::string{c, nx}, line1, false});
                i += 2;
                continue;
            }
            toks.push_back({std::string(1, c), line1, false});
            ++i;
        }
    }
    return toks;
}

/** Per-line brace depth over the code view (column-exact counting;
 *  digraphs were canonicalized by preprocess). */
std::vector<int>
braceDepths(const SourceView &v)
{
    std::vector<int> depth(v.code.size(), 0);
    int d = 0;
    for (std::size_t i = 0; i < v.code.size(); ++i) {
        depth[i] = d;
        for (const char c : v.code[i]) {
            if (c == '{')
                ++d;
            else if (c == '}')
                d = std::max(0, d - 1);
        }
    }
    return depth;
}

/** Index of the token matching the `(` at @p open, or -1. */
int
matchParen(const std::vector<Token> &t, int open)
{
    int depth = 0;
    for (int k = open; k < static_cast<int>(t.size()); ++k) {
        if (t[k].text == "(")
            ++depth;
        else if (t[k].text == ")" && --depth == 0)
            return k;
    }
    return -1;
}

/** Skip a balanced `(...)` or `{...}` starting at @p k; returns the
 *  index just past the closer (or t.size() when unbalanced). */
int
skipBalanced(const std::vector<Token> &t, int k, const char *open,
             const char *close)
{
    int depth = 0;
    for (; k < static_cast<int>(t.size()); ++k) {
        if (t[k].text == open)
            ++depth;
        else if (t[k].text == close && --depth == 0)
            return k + 1;
    }
    return k;
}

/**
 * Decide whether the identifier at @p nameIdx (followed by `(` at
 * nameIdx+1) starts a function definition. On success returns the
 * token index of the body's `{`; otherwise -1.
 */
int
definitionBody(const std::vector<Token> &t, int nameIdx)
{
    const int close = matchParen(t, nameIdx + 1);
    if (close < 0)
        return -1;

    static const std::set<std::string> qualifiers = {
        "const", "noexcept", "override", "final",
        "mutable", "volatile", "throw", "requires",
    };

    int k = close + 1;
    const int n = static_cast<int>(t.size());
    while (k < n) {
        const Token &tok = t[k];
        if (tok.ident && qualifiers.count(tok.text)) {
            ++k;
            if (k < n && t[k].text == "(")
                k = skipBalanced(t, k, "(", ")");
            continue;
        }
        if (tok.text == "->") {
            // trailing return type: scan to the body or terminator
            ++k;
            while (k < n && t[k].text != "{" && t[k].text != ";" &&
                   t[k].text != "=") {
                if (t[k].text == "(")
                    k = skipBalanced(t, k, "(", ")");
                else
                    ++k;
            }
            continue;
        }
        if (tok.text == ":") {
            // ctor-init-list: member(expr) / member{expr} pairs up
            // to the body brace. A `{` directly after an identifier
            // or `>` is an initializer; any other `{` is the body.
            ++k;
            while (k < n) {
                if (t[k].text == "(") {
                    k = skipBalanced(t, k, "(", ")");
                    continue;
                }
                if (t[k].text == "{") {
                    const Token &prev = t[k - 1];
                    if (prev.ident || prev.text == ">") {
                        k = skipBalanced(t, k, "{", "}");
                        continue;
                    }
                    return k; // the body
                }
                if (t[k].text == ";")
                    return -1;
                ++k;
            }
            return -1;
        }
        if (tok.text == "{")
            return k;
        return -1; // `;`, `=`, `,`, `)` ... a declaration
    }
    return -1;
}

/** Walk the `A::B::` qualifier chain backwards from @p nameIdx;
 *  returns the last class component ("" when unqualified). */
std::string
writtenClass(const std::vector<Token> &t, int nameIdx)
{
    if (nameIdx < 2 || t[nameIdx - 1].text != "::")
        return "";
    int k = nameIdx - 2;
    if (t[k].text == ">") {
        // skip template args backwards: Foo<T>::name
        int depth = 0;
        while (k >= 0) {
            if (t[k].text == ">")
                ++depth;
            else if (t[k].text == "<" && --depth == 0) {
                --k;
                break;
            }
            --k;
        }
    }
    return (k >= 0 && t[k].ident) ? t[k].text : "";
}

} // anonymous namespace

void
CppModel::addFile(const std::string &relpath,
                  const std::string &content)
{
    FileModel fm;
    fm.path = relpath;
    fm.view = preprocess(content);
    fm.sup = parseSuppressions(fm.view);
    fm.depthAtLineStart = braceDepths(fm.view);

    // deferred-callable declarations (std::function / the pooled
    // InplaceFunction): member or local names lock-order must treat
    // as opaque when invoked under a lock
    static const std::regex callableDecl(
        R"((?:std\s*::\s*function|InplaceFunction)\s*<[^;]*?>\s+([A-Za-z_]\w*)\s*[;={(])");
    for (const std::string &line : fm.view.code) {
        std::smatch m;
        if (std::regex_search(line, m, callableDecl))
            callables_.insert(m[1].str());
    }

    const std::vector<Token> toks = tokenize(fm.view);
    const int n = static_cast<int>(toks.size());

    struct ClassScope
    {
        std::string name;
        int depth; // brace depth inside the class body
    };
    struct FuncScope
    {
        int defIdx;
        int bodyDepth; // brace depth inside the body
    };
    std::vector<ClassScope> classes;
    std::vector<FuncScope> funcs;
    int braceDepth = 0;
    int parenDepth = 0;
    std::string pendingClass; // seen `class X`, awaiting `{` or `;`

    for (int i = 0; i < n; ++i) {
        const Token &tok = toks[i];

        if (!tok.ident) {
            if (tok.text == "(") {
                ++parenDepth;
            } else if (tok.text == ")") {
                parenDepth = std::max(0, parenDepth - 1);
            } else if (tok.text == "{") {
                ++braceDepth;
                if (!pendingClass.empty() && parenDepth == 0) {
                    classes.push_back({pendingClass, braceDepth});
                    pendingClass.clear();
                }
            } else if (tok.text == "}") {
                braceDepth = std::max(0, braceDepth - 1);
                while (!funcs.empty() &&
                       funcs.back().bodyDepth > braceDepth) {
                    funcs_[static_cast<std::size_t>(
                               funcs.back().defIdx)]
                        .endLine = tok.line;
                    funcs.pop_back();
                }
                while (!classes.empty() &&
                       classes.back().depth > braceDepth)
                    classes.pop_back();
            } else if (tok.text == ";" && parenDepth == 0) {
                pendingClass.clear(); // forward declaration
            }
            continue;
        }

        if ((tok.text == "class" || tok.text == "struct" ||
             tok.text == "union") &&
            parenDepth == 0) {
            // skip `template <class T>` parameters
            const bool inTemplateHead =
                i > 0 && (toks[i - 1].text == "<" ||
                          toks[i - 1].text == ",");
            if (!inTemplateHead && i + 1 < n && toks[i + 1].ident &&
                !isControlKeyword(toks[i + 1].text))
                pendingClass = toks[i + 1].text;
            continue;
        }

        if (i + 1 >= n || toks[i + 1].text != "(")
            continue;
        if (isControlKeyword(tok.text))
            continue;
        const Token *prev = i > 0 ? &toks[i - 1] : nullptr;
        const bool receiverCall =
            prev && (prev->text == "." || prev->text == "->");

        // --- definition?
        if (parenDepth == 0 && !receiverCall) {
            const int body = definitionBody(toks, i);
            if (body >= 0) {
                std::string cls = writtenClass(toks, i);
                if (cls.empty() && !classes.empty())
                    cls = classes.back().name;
                FunctionDef def;
                def.name = tok.text;
                def.qualified = cls.empty()
                                    ? tok.text
                                    : cls + "::" + tok.text;
                def.file = relpath;
                def.line = tok.line;
                def.bodyLine = toks[body].line;
                def.endLine = toks[body].line; // until `}` is seen
                const int defIdx = static_cast<int>(funcs_.size());
                funcs_.push_back(std::move(def));
                byName_[tok.text].push_back(defIdx);
                funcs.push_back({defIdx, braceDepth + 1});
                // jump to the body `{`; the signature's tokens
                // (params, init-list) are not calls
                i = body - 1;
                continue;
            }
        }

        // --- call site, attributed to the innermost definition
        if (funcs.empty())
            continue;
        CallSite cs;
        cs.name = tok.text;
        cs.line = tok.line;
        cs.hasReceiver = receiverCall;
        if (receiverCall && i >= 2 && toks[i - 2].ident)
            cs.receiver = toks[i - 2].text;
        if (prev && prev->text == "::") {
            // collect the a::b::c qualifier chain
            int k = i - 1;
            std::vector<std::string> parts;
            while (k >= 1 && toks[k].text == "::" &&
                   toks[k - 1].ident) {
                parts.push_back(toks[k - 1].text);
                k -= 2;
            }
            for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
                if (!cs.qualifier.empty())
                    cs.qualifier += "::";
                cs.qualifier += *it;
            }
        }
        for (int k = i + 2;
             k < std::min(n, i + 8) && toks[k].text != ")"; ++k) {
            if (!cs.argHead.empty())
                cs.argHead += ' ';
            cs.argHead += toks[k].text;
        }
        funcs_[static_cast<std::size_t>(funcs.back().defIdx)]
            .calls.push_back(std::move(cs));
    }

    // unterminated bodies (truncated files) end at EOF
    while (!funcs.empty()) {
        funcs_[static_cast<std::size_t>(funcs.back().defIdx)]
            .endLine = static_cast<int>(fm.view.code.size());
        funcs.pop_back();
    }

    files_[relpath] = std::move(fm);
}

const FileModel *
CppModel::file(const std::string &relpath) const
{
    const auto it = files_.find(relpath);
    return it == files_.end() ? nullptr : &it->second;
}

std::vector<int>
CppModel::resolve(const std::string &name) const
{
    const auto it = byName_.find(name);
    return it == byName_.end() ? std::vector<int>{} : it->second;
}

std::vector<int>
CppModel::resolveIn(const std::string &relpath,
                    const std::string &name) const
{
    std::vector<int> out;
    for (const int idx : resolve(name))
        if (funcs_[static_cast<std::size_t>(idx)].file == relpath)
            out.push_back(idx);
    return out;
}

bool
CppModel::suppressed(const std::string &relpath, int line,
                     const std::string &rule) const
{
    const FileModel *fm = file(relpath);
    return fm && fm->sup.covers(line, rule);
}

} // namespace bmc::lint
