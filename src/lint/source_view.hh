/**
 * @file
 * Shared lexical preprocessing for the lint layer.
 *
 * Every bmclint pass -- the per-file regex rules in linter.cc and
 * the semantic cpp_model pass -- starts from the same problem: rule
 * patterns must never fire on prose in comments or on quoted text,
 * and the semantic tokenizer must see real code structure only. A
 * SourceView is one file split into lines three ways:
 *
 *   raw   exactly as written. Suppression comments
 *         (`// bmclint:allow(...)`) and sink/source markers live
 *         here.
 *   code  comments, string literals and char literals blanked to
 *         spaces; alternative-token digraphs (`<%`, `%>`, `<:`,
 *         `:>`, `%:`) canonicalized to their primary spellings so
 *         brace/bracket tracking stays correct. Column positions
 *         are preserved.
 *   text  comments blanked, string literals kept verbatim. Rules
 *         that inspect emitted JSON keys or format strings (`%p`,
 *         `\"key\":`) read this view.
 *
 * The lexer handles the full set of edge cases the flat PR-5
 * stripper tripped over: raw string literals with custom delimiters
 * and encoding prefixes (R"...", u8R"...", uR/UR/LR), multi-line
 * raw strings, backslash-newline continuations inside line comments
 * and macro definitions, digit separators (1'000'000), and the
 * `<::` maximal-munch exception for the `<:` digraph.
 */

#ifndef BMC_LINT_SOURCE_VIEW_HH
#define BMC_LINT_SOURCE_VIEW_HH

#include <set>
#include <string>
#include <vector>

namespace bmc::lint
{

/** One file, split into lines three ways (see file comment). */
struct SourceView
{
    std::vector<std::string> raw;
    std::vector<std::string> code;
    std::vector<std::string> text;
};

/** Lex @p content into a SourceView. Never fails; unterminated
 *  constructs simply run to end-of-file. */
SourceView preprocess(const std::string &content);

/** Rules allowed on each line via `bmclint:allow(...)` comments. A
 *  suppression covers its own line and the line below it. */
struct Suppressions
{
    // one set per 0-based line; "*" allows everything on the line
    std::vector<std::set<std::string>> allowed;

    bool
    covers(int line1, const std::string &rule) const
    {
        for (int l : {line1 - 1, line1 - 2}) { // own + previous line
            if (l < 0 || l >= static_cast<int>(allowed.size()))
                continue;
            const auto &s = allowed[static_cast<std::size_t>(l)];
            if (s.count("*") || s.count(rule))
                return true;
        }
        return false;
    }
};

/** Parse `bmclint:allow(id, ...)` comments out of @p v's raw lines. */
Suppressions parseSuppressions(const SourceView &v);

/** Identifiers declared as std::unordered_{map,set} in @p view
 *  (member or local declarations). */
std::set<std::string> unorderedNames(const SourceView &view);

} // namespace bmc::lint

#endif // BMC_LINT_SOURCE_VIEW_HH
