/**
 * @file
 * Minimal JSON document model and parser for the serve protocol.
 *
 * The daemon's wire format is JSON, so the serve layer needs a real
 * parser (unlike sim/catalog's "key": value extractor, which only
 * reads machine-generated rows). This one is deliberately small and
 * defensive: recursive descent with a hard nesting-depth cap, every
 * malformed input reported through an error string (never bmc_fatal
 * -- a hostile frame must not kill the daemon), and objects stored
 * as insertion-ordered key/value vectors so serialization never
 * iterates an unordered container (bmclint `no-unordered-iter`).
 *
 * Scope: UTF-8 text, numbers via strtod, \uXXXX escapes for the
 * Basic Multilingual Plane only (surrogate pairs are rejected).
 * That covers everything the job-spec schema and the protocol
 * replies produce; the malformed-request corpus in
 * tests/corpus/serve/ pins the rejection paths.
 */

#ifndef BMC_SERVE_JSON_HH
#define BMC_SERVE_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace bmc::serve
{

/** Maximum container nesting depth jsonParse accepts. */
constexpr int kJsonMaxDepth = 64;

/** One parsed JSON value (a tagged tree). */
class JsonValue
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolVal = false;
    double numVal = 0.0;
    std::string strVal;
    std::vector<JsonValue> arr;
    /** Object members in document order (duplicates kept; find()
     *  returns the first). */
    std::vector<std::pair<std::string, JsonValue>> obj;

    bool isNull() const { return type == Type::Null; }
    bool isBool() const { return type == Type::Bool; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** First member named @p key, or null (objects only). */
    const JsonValue *find(const std::string &key) const;

    /** Member @p key as a string; @p def when absent/not a string. */
    std::string getString(const std::string &key,
                          const std::string &def = "") const;

    /** Member @p key as a bool; @p def when absent/not a bool. */
    bool getBool(const std::string &key, bool def = false) const;

    /** Member @p key as a double; @p def when absent/non-numeric. */
    double getNumber(const std::string &key, double def = 0.0) const;

    /**
     * Member @p key as an unsigned integer; @p def when absent.
     * False (out untouched) when present but not a non-negative
     * integral number.
     */
    bool getUint(const std::string &key, std::uint64_t &out,
                 std::uint64_t def) const;
};

/**
 * Convert a JSON number to an exact unsigned integer. False for
 * non-numbers, negatives, fractions, and values above 2^53 (where
 * doubles stop being exact).
 */
bool jsonToUint(const JsonValue &v, std::uint64_t &out);

/**
 * Parse one JSON document. On success fills @p out and returns true;
 * on any syntax error (including trailing garbage and over-deep
 * nesting) returns false with a position-stamped message in @p err.
 * Never bmc_fatal: the daemon parses attacker-shaped bytes.
 */
bool jsonParse(const std::string &text, JsonValue &out,
               std::string &err);

/** @p s as a quoted JSON string literal (escapes included). */
std::string jsonQuote(const std::string &s);

/** Serialize @p v back to compact JSON (object order preserved). */
std::string jsonSerialize(const JsonValue &v);

} // namespace bmc::serve

#endif // BMC_SERVE_JSON_HH
