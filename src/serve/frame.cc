#include "serve/frame.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.hh"

namespace bmc::serve
{

namespace
{

/** Read exactly @p n bytes. Returns n, 0 for EOF-at-start, the
 *  short count for EOF mid-way, or -1 for a read error. */
ssize_t
readFull(int fd, char *buf, std::size_t n)
{
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::read(fd, buf + got, n - got);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (r == 0)
            return static_cast<ssize_t>(got);
        got += static_cast<std::size_t>(r);
    }
    return static_cast<ssize_t>(got);
}

bool
writeFull(int fd, const char *buf, std::size_t n)
{
    std::size_t put = 0;
    while (put < n) {
        const ssize_t w = ::write(fd, buf + put, n - put);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        put += static_cast<std::size_t>(w);
    }
    return true;
}

} // anonymous namespace

const char *
frameStatusName(FrameStatus s)
{
    switch (s) {
      case FrameStatus::Ok:
        return "ok";
      case FrameStatus::Eof:
        return "eof";
      case FrameStatus::Truncated:
        return "truncated";
      case FrameStatus::BadMagic:
        return "bad-magic";
      case FrameStatus::Oversized:
        return "oversized";
      case FrameStatus::IoError:
        return "io-error";
    }
    return "unknown";
}

FrameStatus
readFrame(int fd, std::string &payload)
{
    char header[8];
    const ssize_t h = readFull(fd, header, sizeof(header));
    if (h < 0)
        return FrameStatus::IoError;
    if (h == 0)
        return FrameStatus::Eof;
    if (h != sizeof(header))
        return FrameStatus::Truncated;
    if (std::memcmp(header, kFrameMagic, sizeof(kFrameMagic)) != 0)
        return FrameStatus::BadMagic;
    std::uint32_t len = 0;
    for (unsigned i = 0; i < 4; ++i) {
        len |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(header[4 + i]))
               << (8 * i);
    }
    if (len > kMaxFramePayload)
        return FrameStatus::Oversized;
    payload.resize(len);
    if (len == 0)
        return FrameStatus::Ok;
    const ssize_t p = readFull(fd, payload.data(), len);
    if (p < 0)
        return FrameStatus::IoError;
    if (p != static_cast<ssize_t>(len))
        return FrameStatus::Truncated;
    return FrameStatus::Ok;
}

std::string
frameBytes(const std::string &payload)
{
    std::string out;
    out.reserve(8 + payload.size());
    out.append(kFrameMagic, sizeof(kFrameMagic));
    const std::uint32_t len =
        static_cast<std::uint32_t>(payload.size());
    for (unsigned i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
    out.append(payload);
    return out;
}

bool
writeFrame(int fd, const std::string &payload)
{
    if (payload.size() > kMaxFramePayload)
        return false;
    const std::string bytes = frameBytes(payload);
    return writeFull(fd, bytes.data(), bytes.size());
}

int
listenUnixSocket(const std::string &path, std::string &err)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
        err = strfmt("socket path too long (%zu bytes)",
                     path.size());
        return -1;
    }
    const int fd =
        ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        err = strfmt("socket: %s", std::strerror(errno));
        return -1;
    }
    ::unlink(path.c_str());
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        err = strfmt("bind %s: %s", path.c_str(),
                     std::strerror(errno));
        ::close(fd);
        return -1;
    }
    if (::listen(fd, 16) != 0) {
        err = strfmt("listen %s: %s", path.c_str(),
                     std::strerror(errno));
        ::close(fd);
        return -1;
    }
    return fd;
}

int
connectUnixSocket(const std::string &path, std::string &err)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
        err = strfmt("socket path too long (%zu bytes)",
                     path.size());
        return -1;
    }
    const int fd =
        ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        err = strfmt("socket: %s", std::strerror(errno));
        return -1;
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        err = strfmt("connect %s: %s", path.c_str(),
                     std::strerror(errno));
        ::close(fd);
        return -1;
    }
    return fd;
}

int
acceptConnection(int listen_fd)
{
    for (;;) {
        const int fd =
            ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
        if (fd >= 0)
            return fd;
        if (errno != EINTR)
            return -1;
    }
}

void
ignoreSigpipe()
{
    ::signal(SIGPIPE, SIG_IGN);
}

} // namespace bmc::serve
