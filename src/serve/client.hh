/**
 * @file
 * Client side of the serve protocol, shared by the bmcctl CLI and
 * the test suite.
 *
 * A ServeClient is one connection to a bmcserved socket. It speaks
 * the frame layer (serve/frame.hh) and adds the two interaction
 * shapes the protocol has: one-request/one-reply (call) and
 * one-request/streamed-rows-then-end (used for "results").
 * connectRetry() covers the daemon-still-starting window, so a
 * fixture can launch bmcserved and immediately create a client.
 */

#ifndef BMC_SERVE_CLIENT_HH
#define BMC_SERVE_CLIENT_HH

#include <functional>
#include <string>

#include "serve/frame.hh"
#include "serve/json.hh"

namespace bmc::serve
{

/** One connection to a serve daemon. */
class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient() { close(); }
    ServeClient(ServeClient &&other) noexcept;
    ServeClient &operator=(ServeClient &&other) noexcept;
    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** Single connection attempt. */
    bool connect(const std::string &socket_path, std::string &err);

    /**
     * Connect, retrying until @p timeout_seconds of wall time pass
     * (the daemon may still be binding its socket).
     */
    bool connectRetry(const std::string &socket_path,
                      double timeout_seconds, std::string &err);

    bool connected() const { return fd_ >= 0; }
    int fd() const { return fd_; }
    void close();

    /** Send one frame. */
    bool send(const std::string &payload);

    /** Receive one frame. */
    FrameStatus recv(std::string &payload);

    /**
     * One request, one parsed JSON reply. False (with @p err) on
     * transport or parse failure, and also when the daemon
     * answered {"ok": false, ...} -- the daemon's error text
     * becomes @p err.
     */
    bool call(const std::string &request, JsonValue &reply,
              std::string &err);

    /**
     * Issue a "results" request and invoke @p on_row for every
     * streamed row line until the end frame, which is returned in
     * @p end. False (with @p err) on any failure.
     */
    bool streamResults(const std::string &job, bool follow,
                       const std::function<void(
                           std::uint64_t index,
                           const std::string &line)> &on_row,
                       JsonValue &end, std::string &err);

  private:
    int fd_ = -1;
};

} // namespace bmc::serve

#endif // BMC_SERVE_CLIENT_HH
