#include "serve/journal.hh"

#include <fstream>
#include <sstream>

#include "common/binio.hh"
#include "common/logging.hh"

namespace bmc::serve
{

namespace
{

constexpr char kMagic[8] = {'B', 'M', 'C', '1', 'S', 'J', 'N', 'L'};
constexpr std::uint16_t kEndianMarker = 0x0102;
/** First byte of every record; catches raw desync immediately. */
constexpr std::uint8_t kRecordMarker = 0xa7;
/** marker + cell + offset + length + ok + checksum. */
constexpr std::size_t kRecordBytes = 1 + 8 + 8 + 4 + 1 + 4;

std::uint64_t
fnv1a(const std::string &bytes)
{
    std::uint64_t h = 14695981039346656037ULL;
    for (const char c : bytes) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

std::string
recordBytes(const JournalEntry &e)
{
    BinWriter w;
    w.u8(kRecordMarker);
    w.u64(e.cell);
    w.u64(e.offset);
    w.u32(e.length);
    w.u8(e.ok ? 1 : 0);
    BinWriter full;
    full.bytes(w.data().data(), w.data().size());
    full.u32(static_cast<std::uint32_t>(fnv1a(w.data())));
    return full.data();
}

} // anonymous namespace

JournalWriter::~JournalWriter()
{
    close();
}

void
JournalWriter::create(const std::string &path,
                      const JournalHeader &header)
{
    bmc_assert(!f_, "journal already open");
    bmc_assert(header.cellSeeds.size() == header.totalCells,
               "journal header needs one seed per cell");
    BinWriter w;
    w.bytes(kMagic, sizeof(kMagic));
    w.u32(kServeJournalVersion);
    w.u16(kEndianMarker);
    w.str(header.jobId);
    w.str(header.specJson);
    w.u64(header.totalCells);
    for (const std::uint64_t seed : header.cellSeeds)
        w.u64(seed);
    const std::uint64_t sum = fnv1a(w.data());
    BinWriter footer;
    footer.u64(sum);

    f_ = std::fopen(path.c_str(), "wb");
    if (!f_)
        bmc_fatal("cannot create journal '%s'", path.c_str());
    const std::string &head = w.data();
    const std::string &foot = footer.data();
    if (std::fwrite(head.data(), 1, head.size(), f_) !=
            head.size() ||
        std::fwrite(foot.data(), 1, foot.size(), f_) !=
            foot.size() ||
        std::fflush(f_) != 0) {
        bmc_fatal("cannot write journal header '%s'", path.c_str());
    }
}

void
JournalWriter::openAppend(const std::string &path)
{
    bmc_assert(!f_, "journal already open");
    f_ = std::fopen(path.c_str(), "ab");
    if (!f_)
        bmc_fatal("cannot reopen journal '%s'", path.c_str());
}

void
JournalWriter::append(const JournalEntry &e)
{
    bmc_assert(f_, "journal not open");
    const std::string rec = recordBytes(e);
    if (std::fwrite(rec.data(), 1, rec.size(), f_) != rec.size() ||
        std::fflush(f_) != 0) {
        bmc_fatal("cannot append journal record (cell %llu)",
                  static_cast<unsigned long long>(e.cell));
    }
}

void
JournalWriter::close()
{
    if (f_) {
        std::fclose(f_);
        f_ = nullptr;
    }
}

JournalState
readJournal(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        bmc_fatal("cannot open journal '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string bytes = ss.str();

    JournalState out;
    BinReader r(bytes);
    if (bytes.size() < sizeof(kMagic) + 4 + 2 ||
        bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) !=
            0) {
        bmc_fatal("'%s' is not a serve journal (bad magic)",
                  path.c_str());
    }
    for (std::size_t i = 0; i < sizeof(kMagic); ++i)
        (void)r.u8();
    const std::uint32_t version = r.u32();
    if (version != kServeJournalVersion) {
        bmc_fatal("journal '%s' version %u does not match this "
                  "build (version %u)",
                  path.c_str(), version, kServeJournalVersion);
    }
    const std::uint16_t endian = r.u16();
    if (endian != kEndianMarker) {
        bmc_fatal("journal '%s' endianness marker 0x%04x does not "
                  "match 0x%04x",
                  path.c_str(), endian, kEndianMarker);
    }
    out.header.jobId = r.str();
    out.header.specJson = r.str();
    out.header.totalCells = r.u64();
    out.header.cellSeeds.reserve(out.header.totalCells);
    for (std::uint64_t i = 0; i < out.header.totalCells; ++i)
        out.header.cellSeeds.push_back(r.u64());
    const std::size_t bodyEnd = r.pos();
    const std::uint64_t stored = r.u64();
    const std::uint64_t computed =
        fnv1a(bytes.substr(0, bodyEnd));
    if (stored != computed) {
        bmc_fatal("journal '%s' header checksum mismatch: file is "
                  "corrupt",
                  path.c_str());
    }

    // Records: fixed-size, individually checksummed. The first bad
    // or short record ends the readable prefix -- a torn tail from
    // a crash mid-append loses at most that one un-acked record.
    std::size_t pos = r.pos();
    while (bytes.size() - pos >= kRecordBytes) {
        const std::string rec = bytes.substr(pos, kRecordBytes);
        BinReader rr(rec);
        JournalEntry e;
        const std::uint8_t marker = rr.u8();
        e.cell = rr.u64();
        e.offset = rr.u64();
        e.length = rr.u32();
        e.ok = rr.u8() != 0;
        const std::uint32_t sum = rr.u32();
        const std::uint32_t want = static_cast<std::uint32_t>(
            fnv1a(rec.substr(0, kRecordBytes - 4)));
        if (marker != kRecordMarker || sum != want) {
            bmc_warn("journal '%s': dropping torn record at byte "
                     "%zu",
                     path.c_str(), pos);
            break;
        }
        if (e.cell != out.entries.size()) {
            bmc_fatal("journal '%s': record for cell %llu where "
                      "cell %zu was expected: file is corrupt",
                      path.c_str(),
                      static_cast<unsigned long long>(e.cell),
                      out.entries.size());
        }
        if (e.cell >= out.header.totalCells) {
            bmc_fatal("journal '%s': record for cell %llu beyond "
                      "the job's %llu cells",
                      path.c_str(),
                      static_cast<unsigned long long>(e.cell),
                      static_cast<unsigned long long>(
                          out.header.totalCells));
        }
        out.entries.push_back(e);
        pos += kRecordBytes;
    }
    if (pos != bytes.size() &&
        bytes.size() - pos < kRecordBytes) {
        bmc_warn("journal '%s': dropping %zu torn trailing bytes",
                 path.c_str(), bytes.size() - pos);
    }
    if (!out.entries.empty()) {
        const JournalEntry &last = out.entries.back();
        out.coveredBytes = last.offset + last.length + 1;
    }
    return out;
}

} // namespace bmc::serve
