#include "serve/client.hh"

#include <utility>

#include <unistd.h>

#include "common/logging.hh"
#include "common/wallclock.hh"

namespace bmc::serve
{

ServeClient::ServeClient(ServeClient &&other) noexcept
    : fd_(std::exchange(other.fd_, -1))
{
}

ServeClient &
ServeClient::operator=(ServeClient &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
}

bool
ServeClient::connect(const std::string &socket_path,
                     std::string &err)
{
    close();
    ignoreSigpipe();
    fd_ = connectUnixSocket(socket_path, err);
    return fd_ >= 0;
}

bool
ServeClient::connectRetry(const std::string &socket_path,
                          double timeout_seconds, std::string &err)
{
    const WallInstant start = wallNow();
    for (;;) {
        if (connect(socket_path, err))
            return true;
        if (wallSecondsSince(start) > timeout_seconds)
            return false;
        wallSleep(0.05);
    }
}

void
ServeClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
ServeClient::send(const std::string &payload)
{
    return fd_ >= 0 && writeFrame(fd_, payload);
}

FrameStatus
ServeClient::recv(std::string &payload)
{
    if (fd_ < 0)
        return FrameStatus::IoError;
    return readFrame(fd_, payload);
}

bool
ServeClient::call(const std::string &request, JsonValue &reply,
                  std::string &err)
{
    if (!send(request)) {
        err = "cannot send request (daemon gone?)";
        return false;
    }
    std::string payload;
    const FrameStatus fs = recv(payload);
    if (fs != FrameStatus::Ok) {
        err = strfmt("no reply (%s)", frameStatusName(fs));
        return false;
    }
    if (!jsonParse(payload, reply, err))
        return false;
    if (!reply.getBool("ok", false)) {
        err = reply.getString("error", "request failed");
        return false;
    }
    return true;
}

bool
ServeClient::streamResults(
    const std::string &job, bool follow,
    const std::function<void(std::uint64_t,
                             const std::string &)> &on_row,
    JsonValue &end, std::string &err)
{
    const std::string req = strfmt(
        "{\"type\": \"results\", \"job\": %s, \"follow\": %s}",
        jsonQuote(job).c_str(), follow ? "true" : "false");
    if (!send(req)) {
        err = "cannot send request (daemon gone?)";
        return false;
    }
    std::string payload;
    for (;;) {
        const FrameStatus fs = recv(payload);
        if (fs != FrameStatus::Ok) {
            err = strfmt("stream broke (%s)",
                         frameStatusName(fs));
            return false;
        }
        JsonValue frame;
        if (!jsonParse(payload, frame, err))
            return false;
        if (!frame.getBool("ok", false)) {
            err = frame.getString("error", "request failed");
            return false;
        }
        const std::string type = frame.getString("type");
        if (type == "row") {
            std::uint64_t index = 0;
            frame.getUint("index", index, 0);
            if (on_row)
                on_row(index, frame.getString("line"));
            continue;
        }
        if (type == "end") {
            end = frame;
            return true;
        }
        err = strfmt("unexpected frame type '%s' in stream",
                     type.c_str());
        return false;
    }
}

} // namespace bmc::serve
