/**
 * @file
 * The serve job specification: the JSON document a client submits.
 *
 * A job is either a sweep (the spec maps 1:1 onto sim::SweepSpec,
 * the same struct the bmcsweep CLI fills from flags -- so a job
 * submitted to the daemon enumerates exactly the cells the CLI
 * would) or a fuzz campaign (N seeds through check::sampleCase /
 * runCase). Parsing is strict and never fatal: unknown keys,
 * type mismatches and cross-kind keys are rejected with an error
 * string, because the daemon parses untrusted bytes.
 *
 * jobSpecToJson() is the canonical serialization: fixed key order,
 * every field present. It round-trips through parseJobSpec()
 * unchanged and is what the journal persists, so a resumed job
 * re-enumerates from byte-identical input.
 */

#ifndef BMC_SERVE_JOBSPEC_HH
#define BMC_SERVE_JOBSPEC_HH

#include <cstdint>
#include <string>

#include "serve/json.hh"
#include "sim/sweep.hh"

namespace bmc::serve
{

/**
 * Job-spec schema version; a submitted document must carry
 * "schema_version" equal to this. Listed in EXPERIMENTS.md's
 * schema-version registry.
 */
constexpr std::uint32_t kJobSpecVersion = 1;

/**
 * Version tag each fuzz-job result row leads with
 * ("serve_fuzz_schema"); sweep rows carry the ordinary results
 * schema version from runResultToJsonLine().
 */
constexpr std::uint32_t kServeFuzzRowVersion = 1;

/** One submitted job, fully validated. */
struct JobSpec
{
    /** Client-chosen job id stem ([A-Za-z0-9._-], up to 64 chars);
     *  empty = daemon assigns a sequential id. */
    std::string name;
    /** "sweep" or "fuzz". */
    std::string kind = "sweep";
    /** Replace every cell's seed with deriveRunSeed(seed, cell)
     *  (sweep jobs; fuzz jobs always derive). */
    bool deriveSeeds = false;
    /** Write the sidecar catalog index beside the results JSONL
     *  when the job completes (sweep jobs only). */
    bool catalog = false;
    /** The sweep matrix; for fuzz jobs only @c sweep.seed (the base
     *  seed) is meaningful. */
    sim::SweepSpec sweep;
    /** Fuzz cells to run (fuzz jobs; >= 1). */
    std::uint64_t fuzzSeeds = 0;
    /** Pin fuzz cases to one scheme ("" = random per case). */
    std::string fuzzScheme;
};

/**
 * Parse and validate a job-spec document. On failure returns false
 * with a message in @p err; never bmc_fatal. Axis values (scheme /
 * workload names etc.) are validated later by buildSweepRuns()
 * under ScopedThrowErrors -- this layer checks shape, types,
 * version and key spelling.
 */
bool parseJobSpec(const JsonValue &doc, JobSpec &out,
                  std::string &err);

/** As above, from raw JSON text. */
bool parseJobSpec(const std::string &text, JobSpec &out,
                  std::string &err);

/** Canonical serialization (fixed key order; round-trips). */
std::string jobSpecToJson(const JobSpec &spec);

/** Whether @p name is a valid job name (also a safe file stem). */
bool validJobName(const std::string &name);

/**
 * One fuzz-job result row. Shared by the worker (real rows) and the
 * daemon (synthesized ok=false rows for a crashed worker) so both
 * serialize identically.
 */
std::string fuzzRowJson(std::uint64_t index, std::uint64_t seed,
                        std::uint64_t records, bool ok,
                        const std::string &error);

} // namespace bmc::serve

#endif // BMC_SERVE_JOBSPEC_HH
