/**
 * @file
 * Wire framing and Unix-socket plumbing for the serve protocol.
 *
 * Every message between bmcctl / bmcserved / worker processes is one
 * frame: an 8-byte header (4-byte magic "BMCS" + u32 little-endian
 * payload length) followed by a JSON payload. The magic catches a
 * peer that is not speaking the protocol before a bogus length can
 * make the reader allocate; the length cap bounds memory per
 * connection. readFrame() classifies every failure mode instead of
 * dying -- a malformed or truncated frame must cost one connection,
 * never the daemon (the corpus in tests/corpus/serve/ replays
 * exactly these inputs).
 *
 * Framing, like everything on the wire, is independent of host
 * endianness: the length is serialized explicitly little-endian.
 */

#ifndef BMC_SERVE_FRAME_HH
#define BMC_SERVE_FRAME_HH

#include <cstdint>
#include <string>

namespace bmc::serve
{

/** Frame magic, on the wire as the bytes 'B' 'M' 'C' 'S'. */
constexpr char kFrameMagic[4] = {'B', 'M', 'C', 'S'};

/** Maximum payload bytes readFrame() will accept (8 MiB). */
constexpr std::uint32_t kMaxFramePayload = 8u << 20;

/**
 * Serve protocol version, echoed in ping replies. Bump on any
 * request/response schema change; listed in EXPERIMENTS.md's
 * schema-version registry.
 */
constexpr std::uint32_t kServeProtocolVersion = 1;

/** Why a readFrame() call did not produce a payload. */
enum class FrameStatus
{
    Ok,        //!< payload filled
    Eof,       //!< clean close before any header byte
    Truncated, //!< peer vanished mid-header or mid-payload
    BadMagic,  //!< header does not start with "BMCS"
    Oversized, //!< declared length above kMaxFramePayload
    IoError,   //!< read(2) failed
};

const char *frameStatusName(FrameStatus s);

/**
 * Read one complete frame from @p fd (blocking, EINTR-safe). On Ok
 * the payload is in @p payload. After BadMagic or Oversized the
 * stream position is unusable -- close the connection.
 */
FrameStatus readFrame(int fd, std::string &payload);

/**
 * Write one frame (blocking, EINTR-safe). False on any write
 * failure, including EPIPE from a vanished peer -- callers must run
 * with SIGPIPE ignored (see ignoreSigpipe()).
 */
bool writeFrame(int fd, const std::string &payload);

/** The 8-byte header + payload as raw bytes (for partial-write
 *  fault injection; normal senders use writeFrame). */
std::string frameBytes(const std::string &payload);

/**
 * Bind and listen on a Unix stream socket at @p path, unlinking any
 * stale socket first. Returns the listening fd, or -1 with @p err
 * set. The fd is close-on-exec so worker processes never inherit
 * the listener.
 */
int listenUnixSocket(const std::string &path, std::string &err);

/** Connect to the daemon socket; -1 with @p err set on failure. */
int connectUnixSocket(const std::string &path, std::string &err);

/** accept(2) with EINTR retry; close-on-exec; -1 on failure. */
int acceptConnection(int listen_fd);

/** Process-wide SIG_IGN for SIGPIPE (idempotent). */
void ignoreSigpipe();

} // namespace bmc::serve

#endif // BMC_SERVE_FRAME_HH
