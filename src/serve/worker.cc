#include "serve/worker.hh"

#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include <unistd.h>

#include "check/fuzz.hh"
#include "common/logging.hh"
#include "common/wallclock.hh"
#include "serve/frame.hh"
#include "serve/jobspec.hh"
#include "serve/json.hh"
#include "sim/sweep.hh"
#include "sim/system.hh"

namespace bmc::serve
{

namespace
{

/** Parsed BMC_SERVE_INJECT value. */
struct InjectSpec
{
    enum class Kind
    {
        None,
        WorkerCrash,
        SlowCell,
        ShortWrite,
    };
    Kind kind = Kind::None;
    std::uint64_t cell = 0;
    double seconds = 0.5;
};

InjectSpec
injectFromEnv()
{
    InjectSpec out;
    const char *val = std::getenv("BMC_SERVE_INJECT");
    if (!val || !*val)
        return out;
    std::string s(val);
    std::string name = s;
    std::string rest;
    const std::size_t colon = s.find(':');
    if (colon != std::string::npos) {
        name = s.substr(0, colon);
        rest = s.substr(colon + 1);
    }
    if (name == "worker_crash")
        out.kind = InjectSpec::Kind::WorkerCrash;
    else if (name == "slow_cell")
        out.kind = InjectSpec::Kind::SlowCell;
    else if (name == "short_write")
        out.kind = InjectSpec::Kind::ShortWrite;
    else
        bmc_fatal("BMC_SERVE_INJECT: unknown injection '%s'", val);
    if (!rest.empty()) {
        std::string cellStr = rest;
        const std::size_t colon2 = rest.find(':');
        if (colon2 != std::string::npos) {
            cellStr = rest.substr(0, colon2);
            out.seconds =
                std::strtod(rest.substr(colon2 + 1).c_str(),
                            nullptr) /
                1000.0;
        }
        out.cell = std::strtoull(cellStr.c_str(), nullptr, 10);
    }
    return out;
}

/** All per-job state a worker holds between requests. */
struct WorkerState
{
    JobSpec spec;
    std::vector<sim::RunSpec> runs; // sweep jobs
    std::uint64_t cells = 0;
    std::string tmpDir;
    /** Warm-state blobs keyed by warm identity ("" = that identity
     *  cannot share; fall back to in-cell warm-up). */
    std::map<std::string, std::string> warmCache;
    bool prepared = false;
};

std::string
errorReply(const std::string &msg)
{
    return strfmt("{\"ok\": false, \"error\": %s}",
                  jsonQuote(msg).c_str());
}

/**
 * Warm-state blob for @p rs, warmed once per identity and cached.
 * Mirrors runSweep's shared warm-up groups: the serialized state of
 * a freshly warmed System with the cell's exact identity, so
 * restoring it is bit-identical to warming in-cell, and a failure
 * here just falls back to the in-cell path where the real error is
 * reported per run.
 */
const std::string *
warmBlobFor(WorkerState &st, const sim::RunSpec &rs)
{
    if (rs.mode != sim::RunMode::Timing || rs.warmInsts == 0 ||
        !rs.loadCkptPath.empty()) {
        return nullptr;
    }
    std::string key =
        sim::warmIdentityBlob(rs.cfg, rs.programs, {});
    key += strfmt("|warm=%" PRIu64, rs.warmInsts);
    auto it = st.warmCache.find(key);
    if (it == st.warmCache.end()) {
        std::string blob;
        try {
            sim::System sys(rs.cfg, rs.programs);
            if (sys.supportsCheckpoint()) {
                sys.warmupFunctional(rs.warmInsts);
                blob = sys.serializeWarmState();
            }
        } catch (const std::exception &) {
            // Leave the blob empty: warm in-cell instead.
        }
        it = st.warmCache.emplace(std::move(key), std::move(blob))
                 .first;
    }
    return it->second.empty() ? nullptr : &it->second;
}

/** Execute sweep cell @p index and serialize its row. */
std::string
sweepCellLine(WorkerState &st, std::uint64_t index, bool &row_ok)
{
    sim::RunSpec rs = st.runs[index];
    if (st.spec.deriveSeeds) {
        rs.cfg.seed =
            sim::deriveRunSeed(st.spec.sweep.seed, index);
    }
    const std::string *blob = warmBlobFor(st, rs);
    sim::RunResult res;
    try {
        res = sim::executeRun(rs, index, blob);
    } catch (const std::exception &e) {
        res = sim::failedRunResult(rs, index, e.what());
    }
    row_ok = res.ok;
    return sim::runResultToJsonLine(res);
}

/** Execute fuzz cell @p index and serialize its row. */
std::string
fuzzCellLine(WorkerState &st, std::uint64_t index, bool &row_ok)
{
    const std::uint64_t seed =
        sim::deriveRunSeed(st.spec.sweep.seed, index);
    check::FuzzOptions fo;
    fo.scheme = st.spec.fuzzScheme;
    fo.tmpDir = st.tmpDir;
    std::uint64_t records = 0;
    std::string error;
    try {
        const check::FuzzCase c = check::sampleCase(seed, fo);
        records = c.totalRecords();
        error = check::runCase(c, fo.check, st.tmpDir);
    } catch (const std::exception &e) {
        error = e.what();
    }
    row_ok = error.empty();
    return fuzzRowJson(index, seed, records, row_ok, error);
}

std::string
handlePrepare(WorkerState &st, const JsonValue &req)
{
    const std::string specJson = req.getString("spec_json");
    st.tmpDir = req.getString("tmp_dir", "/tmp");
    std::string err;
    if (!parseJobSpec(specJson, st.spec, err))
        return errorReply(err);
    std::error_code ec;
    std::filesystem::create_directories(st.tmpDir, ec);
    if (st.spec.kind == "sweep") {
        try {
            st.runs = sim::buildSweepRuns(st.spec.sweep);
        } catch (const std::exception &e) {
            return errorReply(e.what());
        }
        st.cells = st.runs.size();
    } else {
        st.cells = st.spec.fuzzSeeds;
    }
    st.prepared = true;
    return strfmt("{\"ok\": true, \"type\": \"ready\", "
                  "\"cells\": %" PRIu64 "}",
                  st.cells);
}

} // anonymous namespace

int
serveWorkerMain(int fd)
{
    // Panics/fatals inside a cell surface as SimError and become
    // that cell's ok=false row; real crashes kill this process and
    // the daemon synthesizes the row instead.
    ScopedThrowErrors throw_guard;
    ignoreSigpipe();
    const InjectSpec inject = injectFromEnv();

    WorkerState st;
    std::string payload;
    for (;;) {
        const FrameStatus fs = readFrame(fd, payload);
        if (fs == FrameStatus::Eof)
            return 0; // daemon went away; nothing to clean up
        if (fs != FrameStatus::Ok)
            return 2;
        JsonValue req;
        std::string err;
        if (!jsonParse(payload, req, err)) {
            if (!writeFrame(fd, errorReply(err)))
                return 2;
            continue;
        }
        const std::string type = req.getString("type");
        if (type == "exit")
            return 0;
        std::string reply;
        if (type == "prepare") {
            reply = handlePrepare(st, req);
        } else if (type == "cell") {
            std::uint64_t index = 0;
            if (!st.prepared) {
                reply = errorReply("cell before prepare");
            } else if (!req.getUint("index", index, 0) ||
                       index >= st.cells) {
                reply = errorReply("bad cell index");
            } else {
                if (inject.kind ==
                        InjectSpec::Kind::WorkerCrash &&
                    index == inject.cell) {
                    _exit(113);
                }
                if (inject.kind == InjectSpec::Kind::SlowCell &&
                    index == inject.cell) {
                    wallSleep(inject.seconds);
                }
                bool row_ok = false;
                const std::string line =
                    st.spec.kind == "sweep"
                        ? sweepCellLine(st, index, row_ok)
                        : fuzzCellLine(st, index, row_ok);
                reply = strfmt(
                    "{\"ok\": true, \"type\": \"row\", "
                    "\"index\": %" PRIu64 ", \"row_ok\": %s, "
                    "\"line\": %s}",
                    index, row_ok ? "true" : "false",
                    jsonQuote(line).c_str());
                if (inject.kind ==
                        InjectSpec::Kind::ShortWrite &&
                    index == inject.cell) {
                    const std::string bytes = frameBytes(reply);
                    const std::size_t half = bytes.size() / 2;
                    std::size_t put = 0;
                    while (put < half) {
                        const ssize_t w = ::write(
                            fd, bytes.data() + put, half - put);
                        if (w <= 0)
                            break;
                        put += static_cast<std::size_t>(w);
                    }
                    _exit(114);
                }
            }
        } else {
            reply = errorReply(
                strfmt("unknown request type '%s'", type.c_str()));
        }
        if (!writeFrame(fd, reply))
            return 2;
    }
}

} // namespace bmc::serve
