#include "serve/server.hh"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/wallclock.hh"
#include "serve/frame.hh"
#include "serve/worker.hh"
#include "sim/catalog.hh"
#include "sim/sweep.hh"

namespace bmc::serve
{

namespace
{

std::string
errorReply(const std::string &msg)
{
    return strfmt("{\"ok\": false, \"error\": %s}",
                  jsonQuote(msg).c_str());
}

std::string
rowFrameJson(std::uint64_t index, const std::string &line)
{
    return strfmt("{\"ok\": true, \"type\": \"row\", "
                  "\"index\": %" PRIu64 ", \"line\": %s}",
                  index, jsonQuote(line).c_str());
}

/**
 * The deterministic ok=false row for a cell whose worker died.
 * Built from the same spec-derived identity a live worker would
 * have used, so the row text is independent of which worker died
 * and when.
 */
std::string
deadRowLine(const JobSpec &spec,
            const std::vector<sim::RunSpec> &runs,
            std::uint64_t cell)
{
    if (spec.kind == "fuzz") {
        return fuzzRowJson(
            cell, sim::deriveRunSeed(spec.sweep.seed, cell), 0,
            false, kWorkerDiedError);
    }
    sim::RunSpec rs = runs[cell];
    if (spec.deriveSeeds)
        rs.cfg.seed = sim::deriveRunSeed(spec.sweep.seed, cell);
    return sim::runResultToJsonLine(
        sim::failedRunResult(rs, cell, kWorkerDiedError));
}

} // anonymous namespace

const char *
Server::jobStateName(JobState s)
{
    switch (s) {
      case JobState::Running:
        return "running";
      case JobState::Done:
        return "done";
      case JobState::Cancelled:
        return "cancelled";
      case JobState::Failed:
        return "failed";
    }
    return "unknown";
}

Server::Server(const ServerConfig &cfg) : cfg_(cfg)
{
    bmc_assert(cfg_.workers > 0, "need at least one worker");
    bmc_assert(cfg_.subscriberQueueCap > 0,
               "subscriber queue cap must be positive");
}

Server::~Server()
{
    stop();
}

void
Server::start()
{
    bmc_assert(!started_, "server already started");
    ignoreSigpipe();
    std::error_code ec;
    std::filesystem::create_directories(cfg_.stateDir, ec);

    resumeJournals();

    std::string err;
    listenFd_ = listenUnixSocket(cfg_.socketPath, err);
    if (listenFd_ < 0)
        bmc_fatal("serve: %s", err.c_str());
    started_ = true;
    stopping_ = false;
    acceptThread_ = std::thread([this] { acceptLoop(); });
}

void
Server::stop()
{
    if (!started_)
        return;
    started_ = false;
    stopping_ = true;

    if (listenFd_ >= 0) {
        ::shutdown(listenFd_, SHUT_RDWR);
        ::close(listenFd_);
        listenFd_ = -1;
    }
    if (acceptThread_.joinable())
        acceptThread_.join();

    // Unblock connection threads stuck in read/write, and wake
    // every job runner and subscriber.
    {
        std::lock_guard<std::mutex> lk(connMutex_);
        for (const int fd : connFds_) {
            if (fd >= 0)
                ::shutdown(fd, SHUT_RDWR);
        }
    }
    std::vector<std::shared_ptr<Job>> jobs;
    {
        std::lock_guard<std::mutex> lk(jobsMutex_);
        for (const auto &[id, job] : jobs_) {
            (void)id;
            jobs.push_back(job);
        }
    }
    for (const auto &job : jobs) {
        job->cancel = true;
        std::lock_guard<std::mutex> jl(job->m);
        for (const auto &sub : job->subs) {
            std::lock_guard<std::mutex> sl(sub->m);
            sub->dead = true;
            sub->end = true;
            sub->cv.notify_all();
        }
    }
    {
        std::vector<std::thread> threads;
        {
            std::lock_guard<std::mutex> lk(connMutex_);
            threads.swap(connThreads_);
        }
        for (std::thread &t : threads) {
            if (t.joinable())
                t.join();
        }
        std::lock_guard<std::mutex> lk(connMutex_);
        for (int &fd : connFds_) {
            if (fd >= 0) {
                ::close(fd);
                fd = -1;
            }
        }
    }
    for (const auto &job : jobs) {
        if (job->runner.joinable())
            job->runner.join();
    }
    ::unlink(cfg_.socketPath.c_str());
}

bool
Server::waitIdle(double timeout_seconds) const
{
    const WallInstant start = wallNow();
    for (;;) {
        bool idle = true;
        {
            std::lock_guard<std::mutex> lk(jobsMutex_);
            for (const auto &[id, job] : jobs_) {
                (void)id;
                std::lock_guard<std::mutex> jl(job->m);
                idle = idle && job->state != JobState::Running;
            }
        }
        if (idle)
            return true;
        if (wallSecondsSince(start) > timeout_seconds)
            return false;
        wallSleep(0.02);
    }
}

ServeStats
Server::stats() const
{
    std::lock_guard<std::mutex> lk(statsMutex_);
    return stats_;
}

void
Server::acceptLoop()
{
    while (!stopping_) {
        const int fd = acceptConnection(listenFd_);
        if (fd < 0)
            return; // listener closed by stop()
        std::lock_guard<std::mutex> lk(connMutex_);
        const std::size_t slot = connFds_.size();
        connFds_.push_back(fd);
        connThreads_.emplace_back([this, fd, slot] {
            connectionLoop(fd);
            std::lock_guard<std::mutex> cl(connMutex_);
            if (slot < connFds_.size() && connFds_[slot] == fd) {
                ::close(fd);
                connFds_[slot] = -1;
            }
        });
    }
}

void
Server::connectionLoop(int fd)
{
    std::string payload;
    while (!stopping_) {
        const FrameStatus fs = readFrame(fd, payload);
        if (fs == FrameStatus::Eof ||
            fs == FrameStatus::Truncated ||
            fs == FrameStatus::IoError) {
            if (fs != FrameStatus::Eof) {
                std::lock_guard<std::mutex> lk(statsMutex_);
                ++stats_.framesRejected;
            }
            return;
        }
        if (fs == FrameStatus::BadMagic ||
            fs == FrameStatus::Oversized) {
            // The stream position is unusable; answer once and
            // drop the connection. The daemon itself lives on.
            {
                std::lock_guard<std::mutex> lk(statsMutex_);
                ++stats_.framesRejected;
            }
            writeFrame(fd,
                       errorReply(strfmt("bad frame (%s)",
                                         frameStatusName(fs))));
            return;
        }
        JsonValue req;
        std::string err;
        if (!jsonParse(payload, req, err)) {
            {
                std::lock_guard<std::mutex> lk(statsMutex_);
                ++stats_.framesRejected;
            }
            // Framing is still intact, so the connection can
            // carry further requests.
            if (!writeFrame(fd, errorReply(err)))
                return;
            continue;
        }
        const std::string type = req.getString("type");
        if (type == "results") {
            handleResults(fd, req);
            continue;
        }
        std::string reply;
        if (type == "ping") {
            reply = strfmt("{\"ok\": true, \"type\": \"pong\", "
                           "\"protocol_version\": %u}",
                           kServeProtocolVersion);
        } else if (type == "submit") {
            reply = handleSubmit(req);
        } else if (type == "status") {
            reply = handleStatus();
        } else if (type == "cancel") {
            reply = handleCancel(req);
        } else if (type == "shutdown") {
            writeFrame(fd, "{\"ok\": true, \"type\": "
                           "\"stopping\"}");
            stopRequested_ = true;
            return;
        } else {
            reply = errorReply(
                strfmt("unknown request type '%s'", type.c_str()));
        }
        if (!writeFrame(fd, reply))
            return;
    }
}

std::string
Server::handleSubmit(const JsonValue &req)
{
    const JsonValue *specDoc = req.find("spec");
    if (!specDoc)
        return errorReply("submit needs a 'spec' object");
    JobSpec spec;
    std::string err;
    if (!parseJobSpec(*specDoc, spec, err))
        return errorReply(err);

    // Enumerate the cells now: a spec with a bad scheme/workload is
    // rejected at submit time, not inside a worker.
    std::uint64_t total = 0;
    std::vector<std::uint64_t> seeds;
    if (spec.kind == "sweep") {
        ScopedThrowErrors throw_guard;
        try {
            const std::vector<sim::RunSpec> runs =
                sim::buildSweepRuns(spec.sweep);
            total = runs.size();
            seeds.reserve(total);
            for (std::uint64_t i = 0; i < total; ++i) {
                seeds.push_back(
                    spec.deriveSeeds
                        ? sim::deriveRunSeed(spec.sweep.seed, i)
                        : runs[i].cfg.seed);
            }
        } catch (const std::exception &e) {
            return errorReply(e.what());
        }
    } else {
        total = spec.fuzzSeeds;
        seeds.reserve(total);
        for (std::uint64_t i = 0; i < total; ++i)
            seeds.push_back(
                sim::deriveRunSeed(spec.sweep.seed, i));
    }
    if (total == 0)
        return errorReply("job has no cells");

    auto job = std::make_shared<Job>();
    {
        std::lock_guard<std::mutex> lk(jobsMutex_);
        job->id = spec.name.empty()
                      ? strfmt("job%04u", nextJobSeq_++)
                      : spec.name;
        if (jobs_.find(job->id) != jobs_.end()) {
            return errorReply(strfmt("job '%s' already exists",
                                     job->id.c_str()));
        }
        job->spec = spec;
        job->totalCells = total;
        job->resultsPath =
            cfg_.stateDir + "/" + job->id + ".jsonl";
        job->journalPath =
            cfg_.stateDir + "/" + job->id + ".jnl";

        // Persist the journal header before the first worker runs:
        // from here on a daemon crash leaves a resumable job.
        JournalHeader header;
        header.jobId = job->id;
        header.specJson = jobSpecToJson(spec);
        header.totalCells = total;
        header.cellSeeds = std::move(seeds);
        {
            JournalWriter journal;
            journal.create(job->journalPath, header);
        }
        std::ofstream results(job->resultsPath,
                              std::ios::out | std::ios::trunc);
        if (!results) {
            return errorReply(
                strfmt("cannot create results file '%s'",
                       job->resultsPath.c_str()));
        }
        jobs_[job->id] = job;
    }
    {
        std::lock_guard<std::mutex> lk(statsMutex_);
        ++stats_.jobsSubmitted;
    }
    job->runner = std::thread([this, job] { runJob(job); });
    return strfmt("{\"ok\": true, \"type\": \"submitted\", "
                  "\"job\": %s, \"cells\": %" PRIu64 "}",
                  jsonQuote(job->id).c_str(), total);
}

std::string
Server::handleStatus() const
{
    std::string out =
        strfmt("{\"ok\": true, \"type\": \"status\", "
               "\"protocol_version\": %u, \"jobs\": [",
               kServeProtocolVersion);
    {
        std::lock_guard<std::mutex> lk(jobsMutex_);
        bool first = true;
        for (const auto &[id, job] : jobs_) {
            std::lock_guard<std::mutex> jl(job->m);
            if (!first)
                out += ", ";
            first = false;
            out += strfmt(
                "{\"job\": %s, \"kind\": %s, \"state\": \"%s\", "
                "\"cells\": %" PRIu64 ", \"flushed\": %" PRIu64
                ", \"failed\": %" PRIu64,
                jsonQuote(id).c_str(),
                jsonQuote(job->spec.kind).c_str(),
                jobStateName(job->state), job->totalCells,
                job->flushedCells, job->failedCells);
            if (!job->error.empty()) {
                out += ", \"error\": ";
                out += jsonQuote(job->error);
            }
            out += "}";
        }
    }
    out += "], \"stats\": ";
    const ServeStats st = stats();
    out += strfmt(
        "{\"jobs_submitted\": %" PRIu64
        ", \"jobs_completed\": %" PRIu64
        ", \"jobs_resumed\": %" PRIu64
        ", \"frames_rejected\": %" PRIu64
        ", \"worker_restarts\": %" PRIu64
        ", \"rows_flushed\": %" PRIu64
        ", \"max_subscriber_queue\": %zu}}",
        st.jobsSubmitted, st.jobsCompleted, st.jobsResumed,
        st.framesRejected, st.workerRestarts, st.rowsFlushed,
        st.maxSubscriberQueue);
    return out;
}

std::string
Server::handleCancel(const JsonValue &req)
{
    const std::string id = req.getString("job");
    std::shared_ptr<Job> job;
    {
        std::lock_guard<std::mutex> lk(jobsMutex_);
        const auto it = jobs_.find(id);
        if (it != jobs_.end())
            job = it->second;
    }
    if (!job)
        return errorReply(strfmt("no such job '%s'", id.c_str()));
    job->cancel = true;
    std::lock_guard<std::mutex> jl(job->m);
    return strfmt("{\"ok\": true, \"type\": \"cancelling\", "
                  "\"job\": %s, \"state\": \"%s\"}",
                  jsonQuote(id).c_str(),
                  jobStateName(job->state));
}

void
Server::handleResults(int fd, const JsonValue &req)
{
    const std::string id = req.getString("job");
    const bool follow = req.getBool("follow", false);
    std::shared_ptr<Job> job;
    {
        std::lock_guard<std::mutex> lk(jobsMutex_);
        const auto it = jobs_.find(id);
        if (it != jobs_.end())
            job = it->second;
    }
    if (!job) {
        writeFrame(fd, errorReply(strfmt("no such job '%s'",
                                         id.c_str())));
        return;
    }

    // Register the live subscriber *before* snapshotting the
    // replay range, under the job lock: every row is either inside
    // [0, covered) in the file or arrives on the queue -- exactly
    // once, no gap.
    std::shared_ptr<Subscriber> sub;
    std::uint64_t covered = 0;
    std::uint64_t index = 0;
    {
        std::lock_guard<std::mutex> jl(job->m);
        covered = job->coveredBytes;
        if (follow && job->state == JobState::Running) {
            sub = std::make_shared<Subscriber>();
            job->subs.push_back(sub);
        }
    }

    bool sendOk = true;
    {
        std::ifstream in(job->resultsPath, std::ios::binary);
        std::string text(covered, '\0');
        if (covered > 0 &&
            (!in || !in.read(text.data(),
                             static_cast<std::streamsize>(
                                 covered)))) {
            sendOk = false;
        }
        std::size_t pos = 0;
        while (sendOk && pos < text.size()) {
            const std::size_t nl = text.find('\n', pos);
            const std::size_t end =
                nl == std::string::npos ? text.size() : nl;
            sendOk = writeFrame(
                fd, rowFrameJson(index,
                                 text.substr(pos, end - pos)));
            ++index;
            pos = end + 1;
        }
    }

    if (sub) {
        while (sendOk) {
            std::deque<std::string> batch;
            {
                std::unique_lock<std::mutex> sl(sub->m);
                sub->cv.wait(sl, [&] {
                    return !sub->q.empty() || sub->end ||
                           sub->dead;
                });
                if (sub->q.empty() && (sub->end || sub->dead))
                    break;
                batch.swap(sub->q);
                sub->cv.notify_all(); // wake a blocked producer
            }
            for (const std::string &frame : batch) {
                sendOk = sendOk && writeFrame(fd, frame);
            }
        }
        {
            std::lock_guard<std::mutex> sl(sub->m);
            sub->dead = true;
            sub->cv.notify_all();
        }
        std::lock_guard<std::mutex> jl(job->m);
        const auto it =
            std::find(job->subs.begin(), job->subs.end(), sub);
        if (it != job->subs.end())
            job->subs.erase(it);
    }

    std::lock_guard<std::mutex> jl(job->m);
    writeFrame(fd,
               strfmt("{\"ok\": true, \"type\": \"end\", "
                      "\"job\": %s, \"state\": \"%s\", "
                      "\"flushed\": %" PRIu64
                      ", \"failed\": %" PRIu64 "}",
                      jsonQuote(id).c_str(),
                      jobStateName(job->state),
                      job->flushedCells, job->failedCells));
}

void
Server::resumeJournals()
{
    std::vector<std::string> paths;
    {
        std::error_code ec;
        std::filesystem::directory_iterator it(cfg_.stateDir, ec);
        if (ec)
            return;
        for (const auto &entry : it) {
            if (entry.path().extension() == ".jnl")
                paths.push_back(entry.path().string());
        }
    }
    std::sort(paths.begin(), paths.end());

    for (const std::string &path : paths) {
        ScopedThrowErrors throw_guard;
        JournalState js;
        JobSpec spec;
        std::string err;
        try {
            js = readJournal(path);
        } catch (const std::exception &e) {
            bmc_warn("serve: skipping journal '%s': %s",
                     path.c_str(), e.what());
            continue;
        }
        if (!parseJobSpec(js.header.specJson, spec, err)) {
            bmc_warn("serve: skipping journal '%s': %s",
                     path.c_str(), err.c_str());
            continue;
        }

        auto job = std::make_shared<Job>();
        job->id = js.header.jobId;
        job->spec = spec;
        job->totalCells = js.header.totalCells;
        job->startCell = js.entries.size();
        job->resultsPath =
            cfg_.stateDir + "/" + job->id + ".jsonl";
        job->journalPath = path;
        job->flushedCells = js.entries.size();
        for (const JournalEntry &e : js.entries)
            job->failedCells += e.ok ? 0 : 1;
        job->coveredBytes = js.coveredBytes;

        // Track the auto-id sequence past resumed auto-named jobs.
        unsigned seq = 0;
        if (std::sscanf(job->id.c_str(), "job%u", &seq) == 1)
            nextJobSeq_ = std::max(nextJobSeq_, seq + 1);

        if (job->startCell >= job->totalCells) {
            job->state = JobState::Done;
            std::lock_guard<std::mutex> lk(jobsMutex_);
            jobs_[job->id] = job;
            continue;
        }

        // Roll the results file back to exactly the journaled
        // prefix; anything past it was never acknowledged.
        std::error_code ec;
        const auto haveBytes = std::filesystem::file_size(
            job->resultsPath, ec);
        if (ec || haveBytes < job->coveredBytes) {
            bmc_warn("serve: skipping journal '%s': results file "
                     "shorter than the journaled prefix",
                     path.c_str());
            continue;
        }
        std::filesystem::resize_file(job->resultsPath,
                                     job->coveredBytes, ec);
        if (ec) {
            bmc_warn("serve: skipping journal '%s': cannot "
                     "truncate results file",
                     path.c_str());
            continue;
        }

        {
            std::lock_guard<std::mutex> lk(jobsMutex_);
            jobs_[job->id] = job;
        }
        {
            std::lock_guard<std::mutex> lk(statsMutex_);
            ++stats_.jobsResumed;
        }
        job->runner = std::thread([this, job] { runJob(job); });
    }
}

bool
Server::spawnWorker(const std::shared_ptr<Job> &job, WorkerProc &w,
                    unsigned slot)
{
    int sp[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sp) != 0)
        return false;
    // Parent end must not leak into the worker; the child end must
    // survive exec, so only sp[0] is close-on-exec.
    ::fcntl(sp[0], F_SETFD, FD_CLOEXEC);

    const std::string fdArg = strfmt("--serve-worker=%d", sp[1]);
    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(sp[0]);
        ::close(sp[1]);
        return false;
    }
    if (pid == 0) {
        ::execl(cfg_.workerBinary.c_str(),
                cfg_.workerBinary.c_str(), fdArg.c_str(),
                static_cast<char *>(nullptr));
        _exit(127);
    }
    ::close(sp[1]);
    w.pid = pid;
    w.fd = sp[0];
    w.ready = false;
    w.busy = false;

    const std::string prepare = strfmt(
        "{\"type\": \"prepare\", \"spec_json\": %s, "
        "\"tmp_dir\": %s}",
        jsonQuote(jobSpecToJson(job->spec)).c_str(),
        jsonQuote(strfmt("%s/tmp.%s.w%u", cfg_.stateDir.c_str(),
                         job->id.c_str(), slot))
            .c_str());
    if (!writeFrame(w.fd, prepare)) {
        reapWorker(w);
        return false;
    }
    return true;
}

void
Server::reapWorker(WorkerProc &w)
{
    if (w.fd >= 0) {
        ::close(w.fd);
        w.fd = -1;
    }
    if (w.pid > 0) {
        int status = 0;
        ::waitpid(w.pid, &status, 0);
        w.pid = -1;
    }
    w.busy = false;
    w.ready = false;
}

void
Server::flushRow(const std::shared_ptr<Job> &job,
                 JournalWriter &journal, std::ofstream &jsonl,
                 std::uint64_t cell, bool row_ok,
                 const std::string &line)
{
    // JSONL first, journal second: the journal acknowledges only
    // bytes that are already in the results file, so resume can
    // always truncate forward to a journaled state.
    jsonl << line << '\n';
    jsonl.flush();

    JournalEntry e;
    e.cell = cell;
    e.offset = job->coveredBytes;
    e.length = static_cast<std::uint32_t>(line.size());
    e.ok = row_ok;
    journal.append(e);

    std::vector<std::shared_ptr<Subscriber>> subs;
    {
        std::lock_guard<std::mutex> jl(job->m);
        job->coveredBytes += line.size() + 1;
        ++job->flushedCells;
        if (!row_ok)
            ++job->failedCells;
        subs = job->subs;
    }
    {
        std::lock_guard<std::mutex> lk(statsMutex_);
        ++stats_.rowsFlushed;
    }

    const std::string frame = rowFrameJson(cell, line);
    for (const auto &sub : subs) {
        std::unique_lock<std::mutex> sl(sub->m);
        // Bounded queue: block (backpressure) until the consumer
        // drains or goes away. The wait is interruptible so a
        // daemon shutdown never hangs on a stuck consumer.
        while (sub->q.size() >= cfg_.subscriberQueueCap &&
               !sub->dead && !stopping_ && !job->cancel) {
            sub->cv.wait_for(sl, wallDuration(0.1));
        }
        if (sub->dead || sub->q.size() >= cfg_.subscriberQueueCap)
            continue;
        sub->q.push_back(frame);
        {
            std::lock_guard<std::mutex> lk(statsMutex_);
            stats_.maxSubscriberQueue = std::max(
                stats_.maxSubscriberQueue, sub->q.size());
        }
        sub->cv.notify_all();
    }
}

void
Server::finishJob(const std::shared_ptr<Job> &job,
                  JobState final_state)
{
    if (final_state == JobState::Done && job->spec.catalog) {
        // Same sidecar bmcsweep --catalog writes: derived from the
        // JSONL text, so CLI-written and daemon-written indexes
        // are bit-identical.
        try {
            sim::rebuildCatalogIndex(job->resultsPath);
        } catch (const std::exception &e) {
            bmc_warn("serve: catalog index for job '%s' failed: "
                     "%s",
                     job->id.c_str(), e.what());
        }
    }
    std::vector<std::shared_ptr<Subscriber>> subs;
    {
        std::lock_guard<std::mutex> jl(job->m);
        job->state = final_state;
        subs = job->subs;
    }
    for (const auto &sub : subs) {
        std::lock_guard<std::mutex> sl(sub->m);
        sub->end = true;
        sub->cv.notify_all();
    }
    if (final_state == JobState::Done) {
        std::lock_guard<std::mutex> lk(statsMutex_);
        ++stats_.jobsCompleted;
    }
}

void
Server::runJob(const std::shared_ptr<Job> &job)
{
    // SimError isolation for spec re-validation and catalog
    // rebuilds; cell execution itself happens in worker processes.
    ScopedThrowErrors throw_guard;

    std::vector<sim::RunSpec> runs;
    if (job->spec.kind == "sweep") {
        try {
            runs = sim::buildSweepRuns(job->spec.sweep);
        } catch (const std::exception &e) {
            {
                std::lock_guard<std::mutex> jl(job->m);
                job->error = e.what();
            }
            finishJob(job, JobState::Failed);
            return;
        }
    }

    JournalWriter journal;
    journal.openAppend(job->journalPath);
    std::ofstream jsonl(job->resultsPath,
                        std::ios::out | std::ios::app);
    if (!jsonl) {
        {
            std::lock_guard<std::mutex> jl(job->m);
            job->error = "cannot open results file";
        }
        finishJob(job, JobState::Failed);
        return;
    }

    const std::uint64_t total = job->totalCells;
    std::uint64_t nextCell = job->startCell;
    std::uint64_t flushedNext = job->startCell;
    std::map<std::uint64_t, std::pair<bool, std::string>> staged;

    const std::uint64_t remaining = total - job->startCell;
    const unsigned nworkers = static_cast<unsigned>(std::min<
        std::uint64_t>(cfg_.workers, remaining));
    std::vector<WorkerProc> pool(std::max(1u, nworkers));
    bool poolFailed = false;
    for (unsigned slot = 0; slot < pool.size(); ++slot) {
        if (!spawnWorker(job, pool[slot], slot))
            poolFailed = true;
    }

    while (!poolFailed && flushedNext < total && !stopping_ &&
           !job->cancel) {
        // Hand cells to idle workers in index order. Assignment
        // order does not matter for the output -- rows flush in
        // cell order regardless -- only for utilization.
        for (WorkerProc &w : pool) {
            if (w.fd < 0 || !w.ready || w.busy)
                continue;
            if (nextCell >= total) {
                writeFrame(w.fd, "{\"type\": \"exit\"}");
                reapWorker(w);
                continue;
            }
            w.cell = nextCell++;
            w.busy = true;
            if (!writeFrame(w.fd,
                            strfmt("{\"type\": \"cell\", "
                                   "\"index\": %" PRIu64 "}",
                                   w.cell))) {
                // Treated exactly like a death mid-cell below.
                staged[w.cell] = {false,
                                  deadRowLine(job->spec, runs,
                                              w.cell)};
                {
                    std::lock_guard<std::mutex> lk(statsMutex_);
                    ++stats_.workerRestarts;
                }
                reapWorker(w);
            }
        }

        std::vector<pollfd> pfds;
        std::vector<WorkerProc *> pfdWorker;
        for (WorkerProc &w : pool) {
            if (w.fd < 0)
                continue;
            pfds.push_back(pollfd{w.fd, POLLIN, 0});
            pfdWorker.push_back(&w);
        }
        if (pfds.empty()) {
            if (flushedNext >= total)
                break;
            // Every worker is gone with cells outstanding:
            // respawn one so the job can make progress.
            bool respawned = false;
            for (unsigned slot = 0;
                 slot < pool.size() && !respawned; ++slot) {
                if (pool[slot].prepareDeaths < 3) {
                    respawned =
                        spawnWorker(job, pool[slot], slot);
                }
            }
            if (!respawned) {
                poolFailed = true;
                break;
            }
            continue;
        }
        const int rc =
            ::poll(pfds.data(),
                   static_cast<nfds_t>(pfds.size()), 200);
        if (rc < 0 && errno != EINTR) {
            poolFailed = true;
            break;
        }

        for (std::size_t i = 0; i < pfds.size(); ++i) {
            if (!(pfds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            WorkerProc &w = *pfdWorker[i];
            std::string payload;
            const FrameStatus fs = readFrame(w.fd, payload);
            bool healthy = fs == FrameStatus::Ok;
            JsonValue reply;
            std::string err;
            if (healthy && !jsonParse(payload, reply, err))
                healthy = false;
            if (healthy) {
                const std::string type =
                    reply.getString("type");
                if (type == "ready" &&
                    reply.getBool("ok", false)) {
                    w.ready = true;
                    continue;
                }
                std::uint64_t index = 0;
                if (type == "row" &&
                    reply.getBool("ok", false) &&
                    reply.getUint("index", index, 0) &&
                    index == w.cell && w.busy) {
                    const JsonValue *line =
                        reply.find("line");
                    if (line && line->isString()) {
                        staged[index] = {
                            reply.getBool("row_ok", false),
                            line->strVal};
                        w.busy = false;
                        continue;
                    }
                }
                // A reply we cannot interpret (including a
                // prepare error): the worker is not trustworthy.
                healthy = false;
                if (!w.ready && !w.busy) {
                    // Deterministic prepare failure -- the spec
                    // re-validated badly inside the worker. Kill
                    // the job rather than loop.
                    std::lock_guard<std::mutex> jl(job->m);
                    job->error =
                        reply.getString("error",
                                        "worker rejected job");
                    poolFailed = true;
                }
            }
            if (!healthy) {
                if (w.busy) {
                    staged[w.cell] = {
                        false,
                        deadRowLine(job->spec, runs, w.cell)};
                    {
                        std::lock_guard<std::mutex> lk(
                            statsMutex_);
                        ++stats_.workerRestarts;
                    }
                } else if (!w.ready) {
                    ++w.prepareDeaths;
                    if (w.prepareDeaths >= 3) {
                        std::lock_guard<std::mutex> jl(job->m);
                        if (job->error.empty())
                            job->error = "worker pool failed "
                                         "to start";
                        poolFailed = true;
                    }
                }
                const unsigned slot = static_cast<unsigned>(
                    &w - pool.data());
                const unsigned deaths = w.prepareDeaths;
                reapWorker(w);
                w.prepareDeaths = deaths;
                const bool moreWork =
                    nextCell < total ||
                    !staged.empty() || flushedNext < total;
                if (!poolFailed && moreWork &&
                    w.prepareDeaths < 3) {
                    spawnWorker(job, w, slot);
                }
            }
        }

        while (true) {
            const auto it = staged.find(flushedNext);
            if (it == staged.end())
                break;
            flushRow(job, journal, jsonl, flushedNext,
                     it->second.first, it->second.second);
            staged.erase(it);
            ++flushedNext;
        }
    }

    for (WorkerProc &w : pool) {
        if (w.fd < 0)
            continue;
        if (flushedNext >= total && !w.busy) {
            writeFrame(w.fd, "{\"type\": \"exit\"}");
            reapWorker(w);
        } else {
            // Cancelled / failed / shutting down: the in-flight
            // cell was never journaled, so a resume re-runs it.
            if (w.pid > 0)
                ::kill(w.pid, SIGKILL);
            reapWorker(w);
        }
    }
    journal.close();
    jsonl.close();

    JobState final_state = JobState::Done;
    if (flushedNext < total) {
        if (job->cancel || stopping_)
            final_state = JobState::Cancelled;
        else
            final_state = JobState::Failed;
    }
    finishJob(job, final_state);
}

} // namespace bmc::serve
