#include "serve/json.hh"

#include <cmath>
#include <cstdlib>

#include "common/logging.hh"

namespace bmc::serve
{

namespace
{

/** Recursive-descent parser over one in-memory document. */
class Parser
{
  public:
    Parser(const std::string &text, std::string &err)
        : text_(text), err_(err)
    {
    }

    bool
    parseDocument(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out, 0))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing garbage after document");
        return true;
    }

  private:
    bool
    fail(const std::string &what)
    {
        err_ = strfmt("json: %s at byte %zu", what.c_str(), pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                return;
            ++pos_;
        }
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > kJsonMaxDepth)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of document");
        const char c = text_[pos_];
        switch (c) {
          case '{':
            return parseObject(out, depth);
          case '[':
            return parseArray(out, depth);
          case '"':
            out.type = JsonValue::Type::String;
            return parseString(out.strVal);
          case 't':
            if (!literal("true"))
                return fail("bad literal");
            out.type = JsonValue::Type::Bool;
            out.boolVal = true;
            return true;
          case 'f':
            if (!literal("false"))
                return fail("bad literal");
            out.type = JsonValue::Type::Bool;
            out.boolVal = false;
            return true;
          case 'n':
            if (!literal("null"))
                return fail("bad literal");
            out.type = JsonValue::Type::Null;
            return true;
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue &out, int depth)
    {
        ++pos_; // '{'
        out.type = JsonValue::Type::Object;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            skipWs();
            JsonValue val;
            if (!parseValue(val, depth + 1))
                return false;
            out.obj.emplace_back(std::move(key), std::move(val));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(JsonValue &out, int depth)
    {
        ++pos_; // '['
        out.type = JsonValue::Type::Array;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            JsonValue val;
            if (!parseValue(val, depth + 1))
                return false;
            out.arr.push_back(std::move(val));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            const unsigned char c =
                static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c < 0x20)
                return fail("raw control char in string");
            if (c != '\\') {
                out += static_cast<char>(c);
                ++pos_;
                continue;
            }
            ++pos_;
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (!appendUnicodeEscape(out))
                    return false;
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    appendUnicodeEscape(std::string &out)
    {
        if (text_.size() - pos_ < 4)
            return fail("truncated \\u escape");
        unsigned cp = 0;
        for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + i];
            cp <<= 4;
            if (h >= '0' && h <= '9')
                cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
                cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
                cp |= static_cast<unsigned>(h - 'A' + 10);
            else
                return fail("bad hex in \\u escape");
        }
        pos_ += 4;
        if (cp >= 0xd800 && cp <= 0xdfff)
            return fail("surrogate \\u escape unsupported");
        // Encode the BMP code point as UTF-8.
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
        return true;
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        std::size_t digits = 0;
        while (pos_ < text_.size() && text_[pos_] >= '0' &&
               text_[pos_] <= '9') {
            ++pos_;
            ++digits;
        }
        if (digits == 0)
            return fail("expected a value");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            std::size_t frac = 0;
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9') {
                ++pos_;
                ++frac;
            }
            if (frac == 0)
                return fail("bad number");
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-')) {
                ++pos_;
            }
            std::size_t exp = 0;
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9') {
                ++pos_;
                ++exp;
            }
            if (exp == 0)
                return fail("bad exponent");
        }
        const std::string token = text_.substr(start, pos_ - start);
        out.type = JsonValue::Type::Number;
        out.numVal = std::strtod(token.c_str(), nullptr);
        return true;
    }

    const std::string &text_;
    std::string &err_;
    std::size_t pos_ = 0;
};

} // anonymous namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (type != Type::Object)
        return nullptr;
    for (const auto &[name, value] : obj) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

std::string
JsonValue::getString(const std::string &key,
                     const std::string &def) const
{
    const JsonValue *v = find(key);
    return v && v->isString() ? v->strVal : def;
}

bool
JsonValue::getBool(const std::string &key, bool def) const
{
    const JsonValue *v = find(key);
    return v && v->isBool() ? v->boolVal : def;
}

double
JsonValue::getNumber(const std::string &key, double def) const
{
    const JsonValue *v = find(key);
    return v && v->isNumber() ? v->numVal : def;
}

bool
JsonValue::getUint(const std::string &key, std::uint64_t &out,
                   std::uint64_t def) const
{
    const JsonValue *v = find(key);
    if (!v) {
        out = def;
        return true;
    }
    return jsonToUint(*v, out);
}

bool
jsonToUint(const JsonValue &v, std::uint64_t &out)
{
    if (!v.isNumber() || v.numVal < 0)
        return false;
    // Above 2^53 doubles are no longer exact integers, so a u64
    // round-tripped through JSON would silently change value.
    if (v.numVal > 9007199254740992.0)
        return false;
    if (v.numVal != std::floor(v.numVal))
        return false;
    out = static_cast<std::uint64_t>(v.numVal);
    return true;
}

bool
jsonParse(const std::string &text, JsonValue &out, std::string &err)
{
    out = JsonValue{};
    Parser p(text, err);
    return p.parseDocument(out);
}

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    out += '"';
    return out;
}

std::string
jsonSerialize(const JsonValue &v)
{
    switch (v.type) {
      case JsonValue::Type::Null:
        return "null";
      case JsonValue::Type::Bool:
        return v.boolVal ? "true" : "false";
      case JsonValue::Type::Number: {
        // %.17g round-trips every double exactly.
        std::string s = strfmt("%.17g", v.numVal);
        return s;
      }
      case JsonValue::Type::String:
        return jsonQuote(v.strVal);
      case JsonValue::Type::Array: {
        std::string s = "[";
        for (std::size_t i = 0; i < v.arr.size(); ++i) {
            if (i)
                s += ", ";
            s += jsonSerialize(v.arr[i]);
        }
        s += "]";
        return s;
      }
      case JsonValue::Type::Object: {
        std::string s = "{";
        for (std::size_t i = 0; i < v.obj.size(); ++i) {
            if (i)
                s += ", ";
            s += jsonQuote(v.obj[i].first);
            s += ": ";
            s += jsonSerialize(v.obj[i].second);
        }
        s += "}";
        return s;
      }
    }
    return "null";
}

} // namespace bmc::serve
