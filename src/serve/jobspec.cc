#include "serve/jobspec.hh"

#include <cinttypes>

#include "common/logging.hh"

namespace bmc::serve
{

namespace
{

bool
failKey(std::string &err, const std::string &key,
        const char *what)
{
    err = strfmt("job spec: key '%s' %s", key.c_str(), what);
    return false;
}

/** Parse a JSON array of strings. */
bool
stringList(const JsonValue &v, std::vector<std::string> &out,
           const std::string &key, std::string &err)
{
    if (!v.isArray())
        return failKey(err, key, "must be an array of strings");
    out.clear();
    for (const JsonValue &e : v.arr) {
        if (!e.isString())
            return failKey(err, key,
                           "must be an array of strings");
        out.push_back(e.strVal);
    }
    return true;
}

/** Parse a JSON array of non-negative integers. */
bool
uintList(const JsonValue &v, std::vector<std::uint64_t> &out,
         const std::string &key, std::string &err)
{
    if (!v.isArray())
        return failKey(err, key, "must be an array of integers");
    out.clear();
    for (const JsonValue &e : v.arr) {
        std::uint64_t u = 0;
        if (!jsonToUint(e, u))
            return failKey(err, key,
                           "must be an array of non-negative "
                           "integers");
        out.push_back(u);
    }
    return true;
}

bool
uintValue(const JsonValue &v, std::uint64_t &out,
          const std::string &key, std::string &err)
{
    if (!jsonToUint(v, out))
        return failKey(err, key,
                       "must be a non-negative integer");
    return true;
}

bool
boolValue(const JsonValue &v, bool &out, const std::string &key,
          std::string &err)
{
    if (!v.isBool())
        return failKey(err, key, "must be true or false");
    out = v.boolVal;
    return true;
}

bool
strValue(const JsonValue &v, std::string &out,
         const std::string &key, std::string &err)
{
    if (!v.isString())
        return failKey(err, key, "must be a string");
    out = v.strVal;
    return true;
}

/** runModeFromName without the bmc_fatal (untrusted input). */
bool
modeFromJson(const std::string &name, sim::RunMode &out)
{
    if (name == "timing")
        out = sim::RunMode::Timing;
    else if (name == "functional")
        out = sim::RunMode::Functional;
    else if (name == "antt")
        out = sim::RunMode::Antt;
    else
        return false;
    return true;
}

std::string
uintListJson(const std::vector<std::uint64_t> &vals)
{
    std::string out = "[";
    for (std::size_t i = 0; i < vals.size(); ++i) {
        out += strfmt("%s%" PRIu64, i ? ", " : "", vals[i]);
    }
    out += "]";
    return out;
}

std::string
stringListJson(const std::vector<std::string> &vals)
{
    std::string out = "[";
    for (std::size_t i = 0; i < vals.size(); ++i) {
        if (i)
            out += ", ";
        out += jsonQuote(vals[i]);
    }
    out += "]";
    return out;
}

} // anonymous namespace

bool
validJobName(const std::string &name)
{
    if (name.empty() || name.size() > 64)
        return false;
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' ||
                        c == '_' || c == '-';
        if (!ok)
            return false;
    }
    // "." / ".." would escape the state directory as file stems.
    return name != "." && name != "..";
}

bool
parseJobSpec(const JsonValue &doc, JobSpec &out, std::string &err)
{
    out = JobSpec{};
    if (!doc.isObject()) {
        err = "job spec: document must be a JSON object";
        return false;
    }

    bool sawVersion = false;
    bool sawKind = false;
    std::string sweepOnlyKey;
    // Keys are dispatched one pass in document order; anything not
    // in the schema is an error so typos never silently run the
    // wrong campaign (same contract as the Options parser).
    for (const auto &[key, value] : doc.obj) {
        // "kind" may appear after the keys it governs, so
        // cross-kind rejection is deferred to the end.
        const bool sweepOnly =
            key == "derive_seeds" || key == "catalog" ||
            key == "cores" || key == "full" || key == "instrs" ||
            key == "mode" || key == "records" ||
            key == "workloads" || key == "programs" ||
            key == "schemes" || key == "cache_mib" ||
            key == "big_bytes" || key == "mlp" || key == "reps" ||
            key == "check" || key == "warm_insts";
        if (sweepOnly && sweepOnlyKey.empty())
            sweepOnlyKey = key;
        if (key == "schema_version") {
            std::uint64_t v = 0;
            if (!uintValue(value, v, key, err))
                return false;
            if (v != kJobSpecVersion) {
                err = strfmt("job spec: schema_version %" PRIu64
                             " unsupported (this daemon speaks %u)",
                             v, kJobSpecVersion);
                return false;
            }
            sawVersion = true;
        } else if (key == "kind") {
            if (!strValue(value, out.kind, key, err))
                return false;
            if (out.kind != "sweep" && out.kind != "fuzz") {
                err = strfmt("job spec: unknown kind '%s'",
                             out.kind.c_str());
                return false;
            }
            sawKind = true;
        } else if (key == "name") {
            if (!strValue(value, out.name, key, err))
                return false;
            // Empty = daemon assigns a sequential id (and the
            // canonical serialization always carries the key).
            if (!out.name.empty() && !validJobName(out.name))
                return failKey(err, key,
                               "must match [A-Za-z0-9._-]{1,64}");
        } else if (key == "seed") {
            if (!uintValue(value, out.sweep.seed, key, err))
                return false;
        } else if (key == "derive_seeds") {
            if (!boolValue(value, out.deriveSeeds, key, err))
                return false;
        } else if (key == "catalog") {
            if (!boolValue(value, out.catalog, key, err))
                return false;
        } else if (key == "cores") {
            std::uint64_t v = 0;
            if (!uintValue(value, v, key, err))
                return false;
            out.sweep.cores = static_cast<unsigned>(v);
        } else if (key == "full") {
            if (!boolValue(value, out.sweep.fullScale, key, err))
                return false;
        } else if (key == "instrs") {
            if (!uintValue(value, out.sweep.instrs, key, err))
                return false;
        } else if (key == "mode") {
            std::string name;
            if (!strValue(value, name, key, err))
                return false;
            if (!modeFromJson(name, out.sweep.mode)) {
                err = strfmt("job spec: unknown mode '%s'",
                             name.c_str());
                return false;
            }
        } else if (key == "records") {
            if (!uintValue(value, out.sweep.records, key, err))
                return false;
        } else if (key == "workloads") {
            if (value.isString() && value.strVal == "all") {
                out.sweep.allWorkloads = true;
            } else if (!stringList(value, out.sweep.workloads, key,
                                   err)) {
                return false;
            }
        } else if (key == "programs") {
            if (!stringList(value, out.sweep.programs, key, err))
                return false;
        } else if (key == "schemes") {
            if (!stringList(value, out.sweep.schemes, key, err))
                return false;
        } else if (key == "cache_mib") {
            if (!uintList(value, out.sweep.cacheMib, key, err))
                return false;
        } else if (key == "big_bytes") {
            if (!uintList(value, out.sweep.bigBytes, key, err))
                return false;
        } else if (key == "mlp") {
            if (!uintList(value, out.sweep.mlp, key, err))
                return false;
        } else if (key == "reps") {
            std::uint64_t v = 0;
            if (!uintValue(value, v, key, err))
                return false;
            if (v == 0)
                return failKey(err, key, "must be >= 1");
            out.sweep.reps = static_cast<unsigned>(v);
        } else if (key == "check") {
            if (!strValue(value, out.sweep.check, key, err))
                return false;
        } else if (key == "warm_insts") {
            if (!uintValue(value, out.sweep.warmInsts, key, err))
                return false;
        } else if (key == "fuzz_seeds") {
            if (!uintValue(value, out.fuzzSeeds, key, err))
                return false;
        } else if (key == "fuzz_scheme") {
            if (!strValue(value, out.fuzzScheme, key, err))
                return false;
        } else {
            err = strfmt("job spec: unknown key '%s'", key.c_str());
            return false;
        }
    }

    if (!sawVersion) {
        err = strfmt("job spec: missing schema_version (expected "
                     "%u)",
                     kJobSpecVersion);
        return false;
    }
    if (!sawKind) {
        err = "job spec: missing kind (\"sweep\" or \"fuzz\")";
        return false;
    }
    if (out.kind == "fuzz") {
        if (out.fuzzSeeds == 0) {
            err = "job spec: fuzz jobs need fuzz_seeds >= 1";
            return false;
        }
        if (!sweepOnlyKey.empty()) {
            err = strfmt("job spec: key '%s' is only valid for "
                         "kind \"sweep\"",
                         sweepOnlyKey.c_str());
            return false;
        }
    } else if (out.fuzzSeeds != 0 || !out.fuzzScheme.empty()) {
        err = "job spec: fuzz_seeds/fuzz_scheme are only valid "
              "for kind \"fuzz\"";
        return false;
    }
    return true;
}

bool
parseJobSpec(const std::string &text, JobSpec &out,
             std::string &err)
{
    JsonValue doc;
    if (!jsonParse(text, doc, err))
        return false;
    return parseJobSpec(doc, out, err);
}

std::string
jobSpecToJson(const JobSpec &spec)
{
    std::string out = strfmt("{\"schema_version\": %u, \"kind\": ",
                             kJobSpecVersion);
    out += jsonQuote(spec.kind);
    out += ", \"name\": ";
    out += jsonQuote(spec.name);
    out += strfmt(", \"seed\": %" PRIu64, spec.sweep.seed);
    if (spec.kind == "fuzz") {
        out += strfmt(", \"fuzz_seeds\": %" PRIu64, spec.fuzzSeeds);
        out += ", \"fuzz_scheme\": ";
        out += jsonQuote(spec.fuzzScheme);
        out += "}";
        return out;
    }
    out += strfmt(", \"derive_seeds\": %s, \"catalog\": %s",
                  spec.deriveSeeds ? "true" : "false",
                  spec.catalog ? "true" : "false");
    out += strfmt(", \"cores\": %u, \"full\": %s, \"instrs\": "
                  "%" PRIu64,
                  spec.sweep.cores,
                  spec.sweep.fullScale ? "true" : "false",
                  spec.sweep.instrs);
    out += strfmt(", \"mode\": \"%s\", \"records\": %" PRIu64,
                  sim::runModeName(spec.sweep.mode),
                  spec.sweep.records);
    out += ", \"workloads\": ";
    out += spec.sweep.allWorkloads
               ? std::string("\"all\"")
               : stringListJson(spec.sweep.workloads);
    out += ", \"programs\": ";
    out += stringListJson(spec.sweep.programs);
    out += ", \"schemes\": ";
    out += stringListJson(spec.sweep.schemes);
    out += ", \"cache_mib\": ";
    out += uintListJson(spec.sweep.cacheMib);
    out += ", \"big_bytes\": ";
    out += uintListJson(spec.sweep.bigBytes);
    out += ", \"mlp\": ";
    out += uintListJson(spec.sweep.mlp);
    out += strfmt(", \"reps\": %u, \"check\": ", spec.sweep.reps);
    out += jsonQuote(spec.sweep.check);
    out += strfmt(", \"warm_insts\": %" PRIu64 "}",
                  spec.sweep.warmInsts);
    return out;
}

std::string
fuzzRowJson(std::uint64_t index, std::uint64_t seed,
            std::uint64_t records, bool ok,
            const std::string &error)
{
    std::string out = strfmt(
        "{\"serve_fuzz_schema\": %u, \"run\": %" PRIu64
        ", \"seed\": %" PRIu64 ", \"records\": %" PRIu64
        ", \"ok\": %s",
        kServeFuzzRowVersion, index, seed, records,
        ok ? "true" : "false");
    if (!ok) {
        out += ", \"error\": ";
        out += jsonQuote(error);
    }
    out += "}";
    return out;
}

} // namespace bmc::serve
