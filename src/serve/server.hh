/**
 * @file
 * The bmcserved daemon core: accept loop, job scheduler, worker
 * pool, result streaming and crash-safe resume.
 *
 * One Server owns a Unix listening socket and a state directory.
 * Each submitted job gets a scheduler thread that shards the job's
 * cells across a pool of forked worker processes (serve/worker.hh),
 * stages completed rows, and flushes them strictly in cell order to
 * "<state>/<job>.jsonl" -- journaling every flushed row to
 * "<state>/<job>.jnl" (serve/journal.hh) before acknowledging it
 * anywhere. Because cell execution is deterministic and flushing is
 * in-order, the same job produces bit-identical JSONL for any
 * worker count, and a daemon killed mid-job resumes on restart by
 * truncating the JSONL to the journal's covered bytes and running
 * only the remaining cells.
 *
 * A worker that dies mid-cell (crash, injected fault) costs exactly
 * that cell: the scheduler writes the deterministic ok=false row
 * for it, reaps and replaces the worker, and the job continues.
 *
 * Result streaming ("results" requests with follow) is fan-out with
 * bounded per-subscriber queues: the scheduler blocks when a
 * subscriber's queue is full (backpressure bounds daemon memory), a
 * dead consumer is dropped, and rows already flushed are replayed
 * from the JSONL so a late subscriber sees every row exactly once.
 */

#ifndef BMC_SERVE_SERVER_HH
#define BMC_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/types.h>

#include "serve/jobspec.hh"
#include "serve/journal.hh"

namespace bmc::serve
{

/** Daemon configuration (the bmcserved CLI maps onto this). */
struct ServerConfig
{
    std::string socketPath;
    /** Results, journals and worker scratch live here. */
    std::string stateDir;
    /** Worker processes per running job. */
    unsigned workers = 2;
    /** Binary to exec for workers (normally the daemon itself,
     *  re-entered via --serve-worker). */
    std::string workerBinary;
    /** Row frames a slow "results --follow" consumer may queue
     *  before the scheduler blocks on it. */
    std::size_t subscriberQueueCap = 64;
};

/** Monotonic daemon counters (tests assert on these). */
struct ServeStats
{
    std::uint64_t jobsSubmitted = 0;
    std::uint64_t jobsCompleted = 0;
    std::uint64_t jobsResumed = 0;
    std::uint64_t framesRejected = 0;
    std::uint64_t workerRestarts = 0;
    std::uint64_t rowsFlushed = 0;
    /** High-water mark across all subscriber queues; never exceeds
     *  subscriberQueueCap. */
    std::size_t maxSubscriberQueue = 0;
};

class Server
{
  public:
    explicit Server(const ServerConfig &cfg);
    ~Server();
    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind the socket, resume any half-finished journals found in
     * the state directory, and start accepting connections.
     * bmc_fatal if the socket cannot be bound.
     */
    void start();

    /** Stop accepting, cancel running jobs (their progress stays
     *  journaled and resumable), join every thread. Idempotent. */
    void stop();

    /** Set by a "shutdown" request; the daemon main loop polls it
     *  and calls stop(). */
    bool stopRequested() const { return stopRequested_.load(); }

    /**
     * Test helper: block until no job is running or @p timeout
     * wall seconds pass. True when idle.
     */
    bool waitIdle(double timeout_seconds) const;

    ServeStats stats() const;

  private:
    /** One streaming results consumer. */
    struct Subscriber
    {
        std::mutex m;
        std::condition_variable cv;
        std::deque<std::string> q; //!< serialized row frames
        bool end = false;  //!< job finished; drain and stop
        bool dead = false; //!< consumer gone; stop queueing
    };

    enum class JobState
    {
        Running,
        Done,
        Cancelled,
        Failed,
    };

    static const char *jobStateName(JobState s);

    /** One submitted (or resumed) job. */
    struct Job
    {
        std::string id;
        JobSpec spec;
        std::string resultsPath;
        std::string journalPath;
        std::uint64_t totalCells = 0;
        /** Cells already journaled when the scheduler starts
         *  (resume offset). */
        std::uint64_t startCell = 0;

        mutable std::mutex m;
        JobState state = JobState::Running;
        std::uint64_t flushedCells = 0;
        std::uint64_t failedCells = 0;
        std::uint64_t coveredBytes = 0;
        std::string error;
        std::atomic<bool> cancel{false};
        std::vector<std::shared_ptr<Subscriber>> subs;

        std::thread runner;
    };

    /** One live worker process of a job's pool. */
    struct WorkerProc
    {
        pid_t pid = -1;
        int fd = -1;
        bool ready = false; //!< prepare acknowledged
        bool busy = false;
        std::uint64_t cell = 0;
        unsigned prepareDeaths = 0;
    };

    void acceptLoop();
    void connectionLoop(int fd);
    std::string handleRequest(int fd, const std::string &payload);
    std::string handleSubmit(const JsonValue &req);
    std::string handleStatus() const;
    std::string handleCancel(const JsonValue &req);
    void handleResults(int fd, const JsonValue &req);

    void resumeJournals();
    void runJob(const std::shared_ptr<Job> &job);
    bool spawnWorker(const std::shared_ptr<Job> &job,
                     WorkerProc &w, unsigned slot);
    void reapWorker(WorkerProc &w);
    void flushRow(const std::shared_ptr<Job> &job,
                  JournalWriter &journal, std::ofstream &jsonl,
                  std::uint64_t cell, bool row_ok,
                  const std::string &line);
    void finishJob(const std::shared_ptr<Job> &job,
                   JobState final_state);

    ServerConfig cfg_;
    int listenFd_ = -1;
    std::atomic<bool> stopping_{false};
    std::atomic<bool> stopRequested_{false};
    bool started_ = false;

    std::thread acceptThread_;
    std::mutex connMutex_;
    std::vector<std::thread> connThreads_;
    std::vector<int> connFds_;

    mutable std::mutex jobsMutex_;
    std::map<std::string, std::shared_ptr<Job>> jobs_;
    unsigned nextJobSeq_ = 0;

    mutable std::mutex statsMutex_;
    ServeStats stats_;
};

} // namespace bmc::serve

#endif // BMC_SERVE_SERVER_HH
