/**
 * @file
 * Worker-process side of the daemon's job execution.
 *
 * bmcserved never simulates in-process: every cell runs inside a
 * forked worker started as `bmcserved --serve-worker=<fd>`, talking
 * frames over an inherited socketpair. A cell that crashes the
 * simulator (segfault, abort, runaway assert) therefore kills one
 * worker, which the daemon observes as EOF, records as a
 * deterministic ok=false row, and replaces -- the daemon itself and
 * the job's other cells are untouched.
 *
 * Protocol (daemon -> worker, one reply per request):
 *   {"type": "prepare", "spec_json": <canonical job spec>,
 *    "tmp_dir": dir}                -> {"ok": true, "type":
 *                                       "ready", "cells": N}
 *   {"type": "cell", "index": i}    -> {"ok": true, "type": "row",
 *                                       "index": i, "row_ok": b,
 *                                       "line": <JSONL row text>}
 *   {"type": "exit"}                -> worker exits 0
 *
 * Rows are built with the exact serialization the CLI sweep uses
 * (runResultToJsonLine / fuzzRowJson), and warm-ups are cached per
 * warm identity inside each worker, restoring the same serialized
 * warm state runSweep's shared warm-up groups restore -- so the
 * daemon's JSONL is bit-identical to `bmcsweep` on the same spec,
 * whatever the worker count or shard layout.
 *
 * Fault injection (tests only): BMC_SERVE_INJECT=
 *   worker_crash:<cell>        _exit before executing the cell
 *   slow_cell:<cell>[:ms]      sleep before executing the cell
 *   short_write:<cell>         emit half the row frame, then _exit
 * Unknown values are fatal, mirroring BMC_CHECK_INJECT.
 */

#ifndef BMC_SERVE_WORKER_HH
#define BMC_SERVE_WORKER_HH

#include <cstdint>
#include <string>

namespace bmc::serve
{

/** Error text the daemon stamps on a cell whose worker died; part
 *  of the deterministic-output contract, so fixed here. */
inline const char *const kWorkerDiedError =
    "worker process died while executing this cell";

/**
 * Entry point for the hidden `--serve-worker=<fd>` mode: serve
 * frames on @p fd until an exit request or EOF. Returns the
 * process exit status.
 */
int serveWorkerMain(int fd);

} // namespace bmc::serve

#endif // BMC_SERVE_WORKER_HH
