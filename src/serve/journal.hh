/**
 * @file
 * Job journal: crash-safe progress record for one daemon job.
 *
 * The journal ("<job>.jnl", beside the results JSONL) is a binio
 * header -- magic "BMC1SJNL", version, endianness marker, job id,
 * the canonical job-spec JSON, the cell count, every cell's
 * effective seed, all under an FNV-1a checksum -- followed by one
 * fixed-size append-only record per flushed result row
 * (cell index, JSONL byte offset/length, ok flag, per-record
 * checksum). Rows flush in cell order and the journal record is
 * written after its JSONL line, so at every instant:
 *
 *   - the journal's records are a contiguous prefix [0, n) of the
 *     job's cells;
 *   - the JSONL holds at least the bytes those records cover.
 *
 * A daemon killed mid-job therefore resumes by truncating the JSONL
 * to the covered byte count and re-running cells [n, total) -- the
 * results are bit-identical to a never-interrupted run because cell
 * execution is deterministic. A torn trailing record (the crash hit
 * mid-append) is detected by its checksum and dropped; a corrupt
 * header is fatal (the journal is regenerable only by re-running
 * the job).
 */

#ifndef BMC_SERVE_JOURNAL_HH
#define BMC_SERVE_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace bmc::serve
{

/** Journal file-format version. Listed in EXPERIMENTS.md's
 *  schema-version registry. */
constexpr std::uint32_t kServeJournalVersion = 1;

/** Immutable per-job facts written once at job start. */
struct JournalHeader
{
    std::string jobId;
    /** Canonical jobSpecToJson() of the submitted spec. */
    std::string specJson;
    std::uint64_t totalCells = 0;
    /** Effective seed of every cell (after derive_seeds), for
     *  reproducing any single cell without the daemon. */
    std::vector<std::uint64_t> cellSeeds;
};

/** One flushed-row record. */
struct JournalEntry
{
    std::uint64_t cell = 0;
    /** Byte offset of the row's line in the results JSONL. */
    std::uint64_t offset = 0;
    /** Line length excluding the trailing '\n'. */
    std::uint32_t length = 0;
    bool ok = false;
};

/** Appends header + records with a flush after every write. */
class JournalWriter
{
  public:
    JournalWriter() = default;
    ~JournalWriter();
    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /** Create/truncate @p path and persist @p header
     *  (bmc_fatal on I/O error). */
    void create(const std::string &path,
                const JournalHeader &header);

    /** Reopen an existing journal for appending (resume path). */
    void openAppend(const std::string &path);

    /** Append one record and flush it to the OS. */
    void append(const JournalEntry &e);

    void close();
    bool isOpen() const { return f_ != nullptr; }

  private:
    std::FILE *f_ = nullptr;
};

/** Everything recovered from a journal file. */
struct JournalState
{
    JournalHeader header;
    /** Validated contiguous prefix: entries[i].cell == i. */
    std::vector<JournalEntry> entries;
    /** JSONL bytes the entries cover (offset + length + newline of
     *  the last entry; 0 when empty). Resume truncates the results
     *  file to exactly this size. */
    std::uint64_t coveredBytes = 0;
};

/**
 * Read a journal back. A torn trailing record is dropped with a
 * warning; a corrupt header, out-of-order record, or version /
 * endianness mismatch is bmc_fatal.
 */
JournalState readJournal(const std::string &path);

} // namespace bmc::serve

#endif // BMC_SERVE_JOURNAL_HH
