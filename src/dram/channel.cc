#include "dram/channel.hh"

#include <algorithm>

#include "common/chrome_trace.hh"
#include "common/logging.hh"

namespace bmc::dram
{

ActivityCounters &
ActivityCounters::operator+=(const ActivityCounters &o)
{
    activates += o.activates;
    precharges += o.precharges;
    columnReads += o.columnReads;
    columnWrites += o.columnWrites;
    bytesRead += o.bytesRead;
    bytesWritten += o.bytesWritten;
    refreshes += o.refreshes;
    return *this;
}

Channel::Channel(EventQueue &eq, const TimingParams &params,
                 unsigned channel_id, stats::StatGroup &parent)
    : eq_(eq), p_(params), id_(channel_id),
      banks_(params.banksPerChannel),
      bankFifo_(2 * params.banksPerChannel),
      headSeq_(2 * params.banksPerChannel, kNoSeq),
      headIdx_(2 * params.banksPerChannel, npos32),
      rowHitSeq_(2 * params.banksPerChannel, kNoSeq),
      rowHitIdx_(2 * params.banksPerChannel, npos32),
      rowTable_(64), rowMask_(63),
      nextRefreshAt_(params.toTicks(params.tREFI)),
      sg_("channel" + std::to_string(channel_id), &parent),
      dataRowHits_(sg_, "data_row_hits",
                   "row-buffer hits for data accesses"),
      dataRowMisses_(sg_, "data_row_misses",
                     "row-buffer misses for data accesses"),
      metaRowHits_(sg_, "meta_row_hits",
                   "row-buffer hits for metadata accesses"),
      metaRowMisses_(sg_, "meta_row_misses",
                     "row-buffer misses for metadata accesses"),
      reads_(sg_, "reads", "read requests serviced"),
      writes_(sg_, "writes", "write requests serviced"),
      refreshCount_(sg_, "refreshes", "refresh operations"),
      queueDelay_(sg_, "queue_delay", "ticks from enqueue to issue"),
      serviceTicks_(sg_, "service_ticks",
                    "ticks from enqueue to completion")
{
    bmc_assert(params.banksPerChannel > 0, "channel needs banks");
    slots_.reserve(64);
    freeSlots_.reserve(64);
    inject_ = timingInjectFromEnv();
}

void
Channel::setCrossCheck(bool enabled)
{
    bmc_assert(queued_ == 0,
               "cross-check must be toggled on an idle channel");
    crossCheck_ = enabled;
    shadowQueue_.clear();
}

void
Channel::serializeBankState(BinWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(banks_.size()));
    for (const BankState &bank : banks_) {
        w.u8(bank.rowOpen ? 1 : 0);
        w.u64(bank.openRow);
    }
}

void
Channel::deserializeBankState(BinReader &r)
{
    const std::uint32_t n = r.u32();
    if (n == banks_.size()) {
        for (BankState &bank : banks_) {
            bank.rowOpen = r.u8() != 0;
            bank.openRow = r.u64();
            if (bank.rowOpen)
                refreshRowHit(static_cast<unsigned>(
                    &bank - banks_.data()));
        }
        return;
    }
    // Foreign geometry: acceptable only when nothing needs restoring
    // (warm checkpoints are always all-closed), so checkpoints stay
    // shareable across bank-count / timing-model variants.
    for (std::uint32_t b = 0; b < n; ++b) {
        const std::uint8_t row_open = r.u8();
        r.u64();
        if (row_open) {
            bmc_fatal("checkpoint stores %u banks with bank %u open; "
                      "this channel models %zu banks and cannot "
                      "restore it",
                      n, b, banks_.size());
        }
    }
}

double
Channel::dataRowHitRate() const
{
    const auto total = dataRowHits_.value() + dataRowMisses_.value();
    return total ? static_cast<double>(dataRowHits_.value()) / total
                 : 0.0;
}

double
Channel::metaRowHitRate() const
{
    const auto total = metaRowHits_.value() + metaRowMisses_.value();
    return total ? static_cast<double>(metaRowHits_.value()) / total
                 : 0.0;
}

// ------------------------------------------------- slot pool ------

std::uint32_t
Channel::allocSlot()
{
    if (freeSlots_.empty()) {
        slots_.emplace_back();
        return static_cast<std::uint32_t>(slots_.size() - 1);
    }
    const std::uint32_t idx = freeSlots_.back();
    freeSlots_.pop_back();
    return idx;
}

void
Channel::freeSlot(std::uint32_t idx)
{
    slots_[idx].req.onComplete = nullptr;
    freeSlots_.push_back(idx);
}

// ------------------------------------------------- row table ------

std::size_t
Channel::rowHome(std::uint32_t bank_prio, std::uint64_t row) const
{
    // splitmix-style mix; the row dominates, the (bank, prio) lane
    // decorrelates identical rows on different banks.
    std::uint64_t z =
        (row + 0x9e3779b97f4a7c15ULL * (bank_prio + 1));
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z ^= z >> 27;
    return static_cast<std::size_t>(z) & rowMask_;
}

std::size_t
Channel::rowFind(std::uint32_t bank_prio, std::uint64_t row) const
{
    std::size_t pos = rowHome(bank_prio, row);
    while (rowTable_[pos].used) {
        if (rowTable_[pos].row == row &&
            rowTable_[pos].bankPrio == bank_prio) {
            return pos;
        }
        pos = (pos + 1) & rowMask_;
    }
    return static_cast<std::size_t>(-1);
}

void
Channel::rowGrow()
{
    std::vector<RowEntry> old = std::move(rowTable_);
    rowTable_.assign(old.size() * 2, RowEntry{});
    rowMask_ = rowTable_.size() - 1;
    for (const RowEntry &e : old) {
        if (!e.used)
            continue;
        std::size_t pos = rowHome(e.bankPrio, e.row);
        while (rowTable_[pos].used)
            pos = (pos + 1) & rowMask_;
        rowTable_[pos] = e;
    }
}

std::size_t
Channel::rowFindOrInsert(std::uint32_t bank_prio, std::uint64_t row)
{
    if (2 * (rowUsed_ + 1) > rowTable_.size()) {
        rowGrow();
    }
    std::size_t pos = rowHome(bank_prio, row);
    while (rowTable_[pos].used) {
        if (rowTable_[pos].row == row &&
            rowTable_[pos].bankPrio == bank_prio) {
            return pos;
        }
        pos = (pos + 1) & rowMask_;
    }
    rowTable_[pos].row = row;
    rowTable_[pos].bankPrio = bank_prio;
    rowTable_[pos].list = FifoList{};
    rowTable_[pos].used = true;
    ++rowUsed_;
    return pos;
}

void
Channel::rowErase(std::size_t pos)
{
    // Backward-shift deletion: pull displaced entries into the hole
    // so linear probe chains never break (no tombstones to rescan).
    std::size_t hole = pos;
    std::size_t scan = pos;
    rowTable_[hole].used = false;
    for (;;) {
        scan = (scan + 1) & rowMask_;
        if (!rowTable_[scan].used)
            break;
        const std::size_t home =
            rowHome(rowTable_[scan].bankPrio, rowTable_[scan].row);
        // Skip entries whose home lies cyclically inside (hole, scan]:
        // they are already as close to home as they can get.
        const bool home_between =
            hole <= scan ? (home > hole && home <= scan)
                         : (home > hole || home <= scan);
        if (home_between)
            continue;
        rowTable_[hole] = rowTable_[scan];
        rowTable_[scan].used = false;
        hole = scan;
    }
    --rowUsed_;
}

// ------------------------------------------------ list threading --

void
Channel::refreshRowHit(unsigned bank_id)
{
    const BankState &bank = banks_[bank_id];
    for (const std::uint32_t prio : {0u, 1u}) {
        const std::uint32_t bp = 2 * bank_id + prio;
        const std::size_t lane = soaIndex(bp);
        std::uint32_t head = npos32;
        if (bank.rowOpen) {
            const std::size_t rpos = rowFind(bp, bank.openRow);
            if (rpos != static_cast<std::size_t>(-1))
                head = rowTable_[rpos].list.head;
        }
        rowHitIdx_[lane] = head;
        rowHitSeq_[lane] = head != npos32 ? slots_[head].seq : kNoSeq;
    }
}

void
Channel::linkSlot(std::uint32_t idx)
{
    Slot &s = slots_[idx];
    const std::uint32_t bp = bankPrioOf(s.req);

    FifoList &bank_list = bankFifo_[bp];
    s.bankPrev = bank_list.tail;
    s.bankNext = npos32;
    if (bank_list.tail != npos32)
        slots_[bank_list.tail].bankNext = idx;
    else
        bank_list.head = idx;
    bank_list.tail = idx;
    if (bank_list.head == idx) {
        headSeq_[soaIndex(bp)] = s.seq;
        headIdx_[soaIndex(bp)] = idx;
    }

    const std::size_t rpos = rowFindOrInsert(bp, s.req.loc.row);
    FifoList &row_list = rowTable_[rpos].list;
    s.rowPrev = row_list.tail;
    s.rowNext = npos32;
    if (row_list.tail != npos32)
        slots_[row_list.tail].rowNext = idx;
    else
        row_list.head = idx;
    row_list.tail = idx;
    // A new row-FIFO head is the bank's oldest hit only when the
    // bank currently holds this row open.
    if (row_list.head == idx) {
        const BankState &bank = banks_[s.req.loc.bank];
        if (bank.rowOpen && bank.openRow == s.req.loc.row) {
            rowHitSeq_[soaIndex(bp)] = s.seq;
            rowHitIdx_[soaIndex(bp)] = idx;
        }
    }
}

void
Channel::unlinkSlot(std::uint32_t idx)
{
    Slot &s = slots_[idx];
    const std::uint32_t bp = bankPrioOf(s.req);

    FifoList &bank_list = bankFifo_[bp];
    if (s.bankPrev != npos32)
        slots_[s.bankPrev].bankNext = s.bankNext;
    else
        bank_list.head = s.bankNext;
    if (s.bankNext != npos32)
        slots_[s.bankNext].bankPrev = s.bankPrev;
    else
        bank_list.tail = s.bankPrev;
    if (s.bankPrev == npos32) { // idx was the FIFO head
        const std::uint32_t head = bank_list.head;
        headIdx_[soaIndex(bp)] = head;
        headSeq_[soaIndex(bp)] =
            head != npos32 ? slots_[head].seq : kNoSeq;
    }

    const std::size_t rpos = rowFind(bp, s.req.loc.row);
    bmc_assert(rpos != static_cast<std::size_t>(-1),
               "queued request missing from the row index");
    FifoList &row_list = rowTable_[rpos].list;
    if (s.rowPrev != npos32)
        slots_[s.rowPrev].rowNext = s.rowNext;
    else
        row_list.head = s.rowNext;
    if (s.rowNext != npos32)
        slots_[s.rowNext].rowPrev = s.rowPrev;
    else
        row_list.tail = s.rowPrev;
    if (s.rowPrev == npos32) { // idx was the row-FIFO head
        const BankState &bank = banks_[s.req.loc.bank];
        if (bank.rowOpen && bank.openRow == s.req.loc.row) {
            const std::uint32_t head = row_list.head;
            rowHitIdx_[soaIndex(bp)] = head;
            rowHitSeq_[soaIndex(bp)] =
                head != npos32 ? slots_[head].seq : kNoSeq;
        }
    }
    if (row_list.head == npos32)
        rowErase(rpos);
}

// ------------------------------------------------- scheduling -----

void
Channel::catchUpRefresh(Tick when)
{
    if (!p_.refreshEnabled)
        return;
    const Tick trefi = p_.toTicks(p_.tREFI);
    const Tick trfc = p_.toTicks(p_.tRFC);
    while (nextRefreshAt_ <= when) {
        for (auto &bank : banks_) {
            bank.rowOpen = false;
            if (inject_ != TimingInject::Refresh) {
                bank.nextActAllowed = std::max(
                    bank.nextActAllowed, nextRefreshAt_ + trfc);
            }
        }
        // Every row is closed, so no queued request hits anymore.
        std::fill(rowHitSeq_.begin(), rowHitSeq_.end(), kNoSeq);
        std::fill(rowHitIdx_.begin(), rowHitIdx_.end(), npos32);
        if (cmdObs_) {
            CmdEvent ev;
            ev.kind = CmdKind::Ref;
            ev.channel = id_;
            ev.at = nextRefreshAt_;
            cmdObs_->onCommand(ev);
        }
        nextRefreshAt_ += trefi;
        ++refreshCount_;
        ++activity_.refreshes;
    }
}

Tick
Channel::openRow(BankState &bank, unsigned bank_id,
                 std::uint64_t row, Tick start, bool &row_hit)
{
    const Tick trcd =
        inject_ == TimingInject::Trcd ? 0 : p_.toTicks(p_.tRCD);
    if (bank.rowOpen && bank.openRow == row) {
        row_hit = true;
        return std::max(start, bank.actAt + trcd);
    }
    row_hit = false;
    Tick act_at = std::max(start, bank.nextActAllowed);
    if (bank.rowOpen) {
        // Precharge first: respect tRAS since ACT, tRTP after the
        // last read column command and tWR after the last write
        // burst (the row must not close under an in-flight burst).
        const Tick pre_at =
            std::max({act_at, bank.actAt + p_.toTicks(p_.tRAS),
                      bank.lastColAt + p_.toTicks(p_.tRTP),
                      bank.lastWriteEnd + p_.toTicks(p_.tWR)});
        act_at = inject_ == TimingInject::Trp
                     ? pre_at
                     : pre_at + p_.toTicks(p_.tRP);
        ++activity_.precharges;
        if (cmdObs_) {
            CmdEvent ev;
            ev.kind = CmdKind::Pre;
            ev.channel = id_;
            ev.bank = bank_id;
            ev.row = bank.openRow;
            ev.at = pre_at;
            cmdObs_->onCommand(ev);
        }
    }
    bank.rowOpen = true;
    bank.openRow = row;
    bank.actAt = act_at;
    refreshRowHit(bank_id);
    ++activity_.activates;
    if (cmdObs_) {
        CmdEvent ev;
        ev.kind = CmdKind::Act;
        ev.channel = id_;
        ev.bank = bank_id;
        ev.row = row;
        ev.at = act_at;
        cmdObs_->onCommand(ev);
    }
    return act_at + trcd;
}

void
Channel::chargeBusy(BankState &bank, Tick start, Tick end)
{
    // Non-overlapping accumulation: the bank timeline is charged at
    // reservation time, so a later request on the same bank may
    // start inside an interval already counted.
    const Tick from = std::max(start, bank.busyUntil);
    if (end > from) {
        bank.busyTicks += end - from;
        bank.busyUntil = end;
    }
}

void
Channel::enqueue(Request req)
{
    bmc_assert(req.loc.bank < banks_.size(),
               "bank %u out of range on channel %u", req.loc.bank, id_);
    req.enqueueTick = eq_.now();

    // ActivateOnly requests queue like any other and compete
    // through FR-FCFS: the speculative ACT overlaps a concurrent
    // metadata read without jumping ahead of demand commands.
    const std::uint32_t idx = allocSlot();
    slots_[idx].req = std::move(req);
    slots_[idx].seq = nextSeq_++;
    linkSlot(idx);
    ++queued_;
    if (queued_ > peakQueued_)
        peakQueued_ = queued_;
    if (crossCheck_)
        shadowQueue_.push_back(idx);
    trySchedule();
}

std::uint32_t
Channel::pickNext() const
{
    // FR-FCFS with demand priority: row-hitting demand requests
    // first, then the oldest demand request, then row-hitting
    // background traffic, then the oldest background request.
    // Background traffic (fill remainders, writebacks) is bounded by
    // the controller's fill-buffer credits, so it cannot grow the
    // queue without limit even when demand saturates the channel.
    //
    // Each class resolves with one cache-linear minimum scan over
    // the prio-major SoA seq arrays (kNoSeq never wins, so empty
    // lanes need no branch): first the open-row hits, then the FIFO
    // heads. The link/unlink/row-transition hooks keep the arrays
    // exact, so the winner equals the original per-bank list walk.
    const std::size_t n = banks_.size();
    for (const std::uint32_t prio : {0u, 1u}) {
        const std::size_t base = prio * n;
        std::size_t best_lane = 0;
        std::uint64_t best_seq = kNoSeq;
        for (std::size_t b = 0; b < n; ++b) {
            if (rowHitSeq_[base + b] < best_seq) {
                best_seq = rowHitSeq_[base + b];
                best_lane = base + b;
            }
        }
        if (best_seq != kNoSeq)
            return rowHitIdx_[best_lane];
        for (std::size_t b = 0; b < n; ++b) {
            if (headSeq_[base + b] < best_seq) {
                best_seq = headSeq_[base + b];
                best_lane = base + b;
            }
        }
        if (best_seq != kNoSeq)
            return headIdx_[best_lane];
    }
    return npos32;
}

std::uint32_t
Channel::pickNextReference() const
{
    // The original linear FR-FCFS scan in arrival order, kept as the
    // ground truth for the differential test.
    std::uint32_t oldest_hi = npos32;
    std::uint32_t oldest_lo = npos32;
    std::uint32_t rowhit_lo = npos32;
    for (const std::uint32_t idx : shadowQueue_) {
        const Request &r = slots_[idx].req;
        const auto &bank = banks_[r.loc.bank];
        const bool row_hit =
            bank.rowOpen && bank.openRow == r.loc.row;
        if (!r.lowPriority) {
            if (row_hit)
                return idx;
            if (oldest_hi == npos32)
                oldest_hi = idx;
        } else {
            if (row_hit && rowhit_lo == npos32)
                rowhit_lo = idx;
            if (oldest_lo == npos32)
                oldest_lo = idx;
        }
    }
    if (oldest_hi != npos32)
        return oldest_hi;
    if (rowhit_lo != npos32)
        return rowhit_lo;
    return oldest_lo;
}

void
Channel::serviceOne(std::uint32_t idx)
{
    Request req = std::move(slots_[idx].req);
    unlinkSlot(idx);
    freeSlot(idx);
    --queued_;
    if (crossCheck_) {
        for (auto it = shadowQueue_.begin(); it != shadowQueue_.end();
             ++it) {
            if (*it == idx) {
                shadowQueue_.erase(it);
                break;
            }
        }
    }

    const bool low = req.lowPriority;
    if (low)
        ++inFlightLow_;

    catchUpRefresh(eq_.now());

    auto &bank = banks_[req.loc.bank];

    if (req.kind == ReqKind::ActivateOnly) {
        // Open the row (or find it open); uses no data bus and does
        // not perturb the row-hit statistics.
        bool spec_hit = false;
        const Tick ready = openRow(bank, req.loc.bank, req.loc.row,
                                   eq_.now(), spec_hit);
        // A speculative hit found the row already open; only a real
        // ACT occupies the bank.
        chargeBusy(bank, spec_hit ? ready : bank.actAt, ready);
        if (tracer_ && req.traceId) {
            tracer_->completeEvent(
                "dram_activate", "dram", 1, req.traceId,
                req.enqueueTick, ready,
                strfmt("{\"channel\": %u, \"bank\": %u, "
                       "\"row_open\": %s}",
                       id_, req.loc.bank,
                       spec_hit ? "true" : "false"));
        }
        ++inFlight_;
        auto cb = std::move(req.onComplete);
        // @p low is virtually always false here (nothing in the
        // system issues background activates), but dropping it would
        // leak inFlightLow_ and stall background traffic for good.
        // The event fires exactly at @c ready, so eq_.now() stands in
        // for it and the closure stays within the inline budget.
        auto done = [this, cb = std::move(cb), low] {
            --inFlight_;
            if (low)
                --inFlightLow_;
            if (cb)
                cb(eq_.now());
            trySchedule();
        };
        static_assert(
            EventQueue::Callback::fitsInline<decltype(done)>(),
            "ACT completion closure must stay within the pooled "
            "node's inline budget -- this fires once per speculative "
            "activate");
        eq_.scheduleAt(ready, std::move(done));
        return;
    }

    bool row_hit = false;
    const Tick col_ready = openRow(bank, req.loc.bank, req.loc.row,
                                   eq_.now(), row_hit);

    if (req.isMetadata) {
        if (row_hit)
            ++metaRowHits_;
        else
            ++metaRowMisses_;
    } else {
        if (row_hit)
            ++dataRowHits_;
        else
            ++dataRowMisses_;
    }

    // The column command respects the tCCD fence; the data burst
    // begins once CAS latency has elapsed and the bus is free (the
    // command is implicitly delayed to match the bus). Same-row
    // requests pipeline: the next CAS may issue tCCD after this one
    // rather than after the whole transfer.
    const Tick col_at = std::max(col_ready, bank.nextCasAllowed);
    const Tick data_start =
        std::max(col_at + p_.toTicks(p_.tCL), busFreeAt_);
    const Tick eff_col = data_start - p_.toTicks(p_.tCL);
    const Tick data_end = data_start + p_.transferTicks(req.bytes);
    busFreeAt_ = data_end;
    bank.nextCasAllowed = eff_col + p_.toTicks(p_.tCCD);
    bank.lastColAt = eff_col;

    if (req.kind == ReqKind::Write) {
        bank.lastWriteEnd = data_end;
        ++writes_;
        ++activity_.columnWrites;
        activity_.bytesWritten += req.bytes;
    } else {
        ++reads_;
        ++activity_.columnReads;
        activity_.bytesRead += req.bytes;
    }

    queueDelay_.sample(static_cast<double>(data_start - req.enqueueTick));
    serviceTicks_.sample(static_cast<double>(data_end - req.enqueueTick));

    if (cmdObs_) {
        CmdEvent ev;
        ev.kind = req.kind == ReqKind::Write ? CmdKind::Wr
                                             : CmdKind::Rd;
        ev.channel = id_;
        ev.bank = req.loc.bank;
        ev.row = req.loc.row;
        ev.at = eff_col;
        ev.dataStart = data_start;
        ev.dataEnd = data_end;
        ev.bytes = req.bytes;
        cmdObs_->onCommand(ev);
    }

    // The bank is occupied from its first command for this request
    // (ACT on a miss, the column command on a hit) to burst end.
    chargeBusy(bank, row_hit ? eff_col : bank.actAt, data_end);

    // All timestamps are known at reservation time, so tracing emits
    // here and the completion closure below stays untouched (it sits
    // exactly at the event queue's inline-capture budget).
    if (tracer_ && req.traceId) {
        tracer_->completeEvent(
            "dram_queue_wait", "dram", 1, req.traceId,
            req.enqueueTick, data_start,
            strfmt("{\"channel\": %u, \"bank\": %u}", id_,
                   req.loc.bank));
        tracer_->completeEvent(
            "dram_burst", "dram", 1, req.traceId, data_start,
            data_end,
            strfmt("{\"channel\": %u, \"bank\": %u, \"write\": %s, "
                   "\"metadata\": %s, \"row_hit\": %s, "
                   "\"bytes\": %u}",
                   id_, req.loc.bank,
                   req.kind == ReqKind::Write ? "true" : "false",
                   req.isMetadata ? "true" : "false",
                   row_hit ? "true" : "false", req.bytes));
    }

    ++inFlight_;
    auto cb = std::move(req.onComplete);
    // The completion fires at data_end, so eq_.now() inside the
    // callback is the burst-end tick; capturing [this, cb, low] only
    // keeps the closure within the kernel's inline budget.
    auto done = [this, cb = std::move(cb), low] {
        --inFlight_;
        if (low)
            --inFlightLow_;
        if (cb)
            cb(eq_.now());
        trySchedule();
    };
    static_assert(
        EventQueue::Callback::fitsInline<decltype(done)>(),
        "burst completion closure must stay within the pooled node's "
        "inline budget -- this fires once per DRAM transaction");
    eq_.scheduleAt(data_end, std::move(done));
}

void
Channel::trySchedule()
{
    while (queued_ > 0 && inFlight_ < lookahead_) {
        const std::uint32_t idx = pickNext();
        bmc_assert(idx != npos32, "pickNext found nothing queued");
        if (crossCheck_) {
            const std::uint32_t ref = pickNextReference();
            bmc_assert(ref == idx,
                       "FR-FCFS divergence: index picked seq %llu, "
                       "reference picked seq %llu",
                       static_cast<unsigned long long>(
                           slots_[idx].seq),
                       static_cast<unsigned long long>(
                           slots_[ref].seq));
        }
        // Commit at most one background request at a time so that a
        // demand request arriving next cycle never waits behind a
        // train of already-committed fills/writebacks.
        if (slots_[idx].req.lowPriority && inFlightLow_ >= 1)
            return;
        serviceOne(idx);
    }
}

} // namespace bmc::dram
