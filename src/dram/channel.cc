#include "dram/channel.hh"

#include <algorithm>

#include "common/logging.hh"

namespace bmc::dram
{

ActivityCounters &
ActivityCounters::operator+=(const ActivityCounters &o)
{
    activates += o.activates;
    precharges += o.precharges;
    columnReads += o.columnReads;
    columnWrites += o.columnWrites;
    bytesRead += o.bytesRead;
    bytesWritten += o.bytesWritten;
    refreshes += o.refreshes;
    return *this;
}

Channel::Channel(EventQueue &eq, const TimingParams &params,
                 unsigned channel_id, stats::StatGroup &parent)
    : eq_(eq), p_(params), id_(channel_id),
      banks_(params.banksPerChannel),
      nextRefreshAt_(params.toTicks(params.tREFI)),
      sg_("channel" + std::to_string(channel_id), &parent),
      dataRowHits_(sg_, "data_row_hits",
                   "row-buffer hits for data accesses"),
      dataRowMisses_(sg_, "data_row_misses",
                     "row-buffer misses for data accesses"),
      metaRowHits_(sg_, "meta_row_hits",
                   "row-buffer hits for metadata accesses"),
      metaRowMisses_(sg_, "meta_row_misses",
                     "row-buffer misses for metadata accesses"),
      reads_(sg_, "reads", "read requests serviced"),
      writes_(sg_, "writes", "write requests serviced"),
      refreshCount_(sg_, "refreshes", "refresh operations"),
      queueDelay_(sg_, "queue_delay", "ticks from enqueue to issue"),
      serviceTicks_(sg_, "service_ticks",
                    "ticks from enqueue to completion")
{
    bmc_assert(params.banksPerChannel > 0, "channel needs banks");
}

double
Channel::dataRowHitRate() const
{
    const auto total = dataRowHits_.value() + dataRowMisses_.value();
    return total ? static_cast<double>(dataRowHits_.value()) / total
                 : 0.0;
}

double
Channel::metaRowHitRate() const
{
    const auto total = metaRowHits_.value() + metaRowMisses_.value();
    return total ? static_cast<double>(metaRowHits_.value()) / total
                 : 0.0;
}

void
Channel::catchUpRefresh(Tick when)
{
    if (!p_.refreshEnabled)
        return;
    const Tick trefi = p_.toTicks(p_.tREFI);
    const Tick trfc = p_.toTicks(p_.tRFC);
    while (nextRefreshAt_ <= when) {
        for (auto &bank : banks_) {
            bank.rowOpen = false;
            bank.nextActAllowed =
                std::max(bank.nextActAllowed, nextRefreshAt_ + trfc);
        }
        nextRefreshAt_ += trefi;
        ++refreshCount_;
        ++activity_.refreshes;
    }
}

Tick
Channel::openRow(BankState &bank, std::uint64_t row, Tick start,
                 bool &row_hit)
{
    if (bank.rowOpen && bank.openRow == row) {
        row_hit = true;
        return std::max(start, bank.actAt + p_.toTicks(p_.tRCD));
    }
    row_hit = false;
    Tick act_at = std::max(start, bank.nextActAllowed);
    if (bank.rowOpen) {
        // Precharge first: respect tRAS since ACT, tRTP after the
        // last read column command and tWR after the last write
        // burst (the row must not close under an in-flight burst).
        const Tick pre_at =
            std::max({act_at, bank.actAt + p_.toTicks(p_.tRAS),
                      bank.lastColAt + p_.toTicks(p_.tRTP),
                      bank.lastWriteEnd + p_.toTicks(p_.tWR)});
        act_at = pre_at + p_.toTicks(p_.tRP);
        ++activity_.precharges;
    }
    bank.rowOpen = true;
    bank.openRow = row;
    bank.actAt = act_at;
    ++activity_.activates;
    return act_at + p_.toTicks(p_.tRCD);
}

void
Channel::enqueue(Request req)
{
    bmc_assert(req.loc.bank < banks_.size(),
               "bank %u out of range on channel %u", req.loc.bank, id_);
    req.enqueueTick = eq_.now();

    // ActivateOnly requests queue like any other and compete
    // through FR-FCFS: the speculative ACT overlaps a concurrent
    // metadata read without jumping ahead of demand commands.
    queue_.push_back(std::move(req));
    trySchedule();
}

size_t
Channel::pickNext() const
{
    // FR-FCFS with demand priority: row-hitting demand requests
    // first, then the oldest demand request, then row-hitting
    // background traffic, then the oldest background request.
    // Background traffic (fill remainders, writebacks) is bounded by
    // the controller's fill-buffer credits, so it cannot grow the
    // queue without limit even when demand saturates the channel.
    size_t oldest_hi = queue_.size();
    size_t oldest_lo = queue_.size();
    size_t rowhit_lo = queue_.size();
    for (size_t i = 0; i < queue_.size(); ++i) {
        const auto &r = queue_[i];
        const auto &bank = banks_[r.loc.bank];
        const bool row_hit =
            bank.rowOpen && bank.openRow == r.loc.row;
        if (!r.lowPriority) {
            if (row_hit)
                return i;
            if (oldest_hi == queue_.size())
                oldest_hi = i;
        } else {
            if (row_hit && rowhit_lo == queue_.size())
                rowhit_lo = i;
            if (oldest_lo == queue_.size())
                oldest_lo = i;
        }
    }
    if (oldest_hi != queue_.size())
        return oldest_hi;
    if (rowhit_lo != queue_.size())
        return rowhit_lo;
    return oldest_lo;
}

void
Channel::serviceOne(size_t idx)
{
    Request req = std::move(queue_[idx]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
    const bool low = req.lowPriority;
    if (low)
        ++inFlightLow_;

    catchUpRefresh(eq_.now());

    auto &bank = banks_[req.loc.bank];

    if (req.kind == ReqKind::ActivateOnly) {
        // Open the row (or find it open); uses no data bus and does
        // not perturb the row-hit statistics.
        bool spec_hit = false;
        const Tick ready =
            openRow(bank, req.loc.row, eq_.now(), spec_hit);
        ++inFlight_;
        auto cb = std::move(req.onComplete);
        eq_.scheduleAt(ready, [this, cb = std::move(cb), ready] {
            --inFlight_;
            if (cb)
                cb(ready);
            trySchedule();
        });
        return;
    }

    bool row_hit = false;
    const Tick col_ready =
        openRow(bank, req.loc.row, eq_.now(), row_hit);

    if (req.isMetadata) {
        if (row_hit)
            ++metaRowHits_;
        else
            ++metaRowMisses_;
    } else {
        if (row_hit)
            ++dataRowHits_;
        else
            ++dataRowMisses_;
    }

    // The column command respects the tCCD fence; the data burst
    // begins once CAS latency has elapsed and the bus is free (the
    // command is implicitly delayed to match the bus). Same-row
    // requests pipeline: the next CAS may issue tCCD after this one
    // rather than after the whole transfer.
    const Tick col_at = std::max(col_ready, bank.nextCasAllowed);
    const Tick data_start =
        std::max(col_at + p_.toTicks(p_.tCL), busFreeAt_);
    const Tick eff_col = data_start - p_.toTicks(p_.tCL);
    const Tick data_end = data_start + p_.transferTicks(req.bytes);
    busFreeAt_ = data_end;
    bank.nextCasAllowed = eff_col + p_.toTicks(p_.tCCD);
    bank.lastColAt = eff_col;

    if (req.kind == ReqKind::Write) {
        bank.lastWriteEnd = data_end;
        ++writes_;
        ++activity_.columnWrites;
        activity_.bytesWritten += req.bytes;
    } else {
        ++reads_;
        ++activity_.columnReads;
        activity_.bytesRead += req.bytes;
    }

    queueDelay_.sample(static_cast<double>(data_start - req.enqueueTick));
    serviceTicks_.sample(static_cast<double>(data_end - req.enqueueTick));

    ++inFlight_;
    auto cb = std::move(req.onComplete);
    eq_.scheduleAt(data_end,
                   [this, cb = std::move(cb), data_end, low] {
                       --inFlight_;
                       if (low)
                           --inFlightLow_;
                       if (cb)
                           cb(data_end);
                       trySchedule();
                   });
}

void
Channel::trySchedule()
{
    while (!queue_.empty() && inFlight_ < lookahead_) {
        const size_t idx = pickNext();
        bmc_assert(idx < queue_.size(), "pickNext out of range");
        // Commit at most one background request at a time so that a
        // demand request arriving next cycle never waits behind a
        // train of already-committed fills/writebacks.
        if (queue_[idx].lowPriority && inFlightLow_ >= 1)
            return;
        serviceOne(idx);
    }
}

} // namespace bmc::dram
