#include "dram/timing_params.hh"

#include "common/bitops.hh"

namespace bmc::dram
{

Tick
TimingParams::transferTicks(std::uint32_t bytes) const
{
    if (bytes == 0)
        return 0;
    return toTicks(divCeil(bytes, busBytesPerCycle));
}

TimingParams
TimingParams::stacked(unsigned channels, unsigned banks)
{
    TimingParams p;
    p.numChannels = channels;
    p.banksPerChannel = banks;
    p.pageBytes = 2048;
    // 1.6 GHz DRAM clock under a 3.2 GHz CPU clock.
    p.cpuPerDramCycle = 2;
    // 128-bit bus, DDR: 16 B x 2 transfers per DRAM cycle.
    p.busBytesPerCycle = 32;
    p.tCL = p.tRCD = p.tRP = 9;
    p.tRAS = 24;
    p.tWR = 12;
    p.tCCD = 4;
    p.tRRD = 5;
    // 7.8 us at 1.6 GHz.
    p.tREFI = 12480;
    p.tRFC = 280;
    return p;
}

TimingParams
TimingParams::ddr3_1600h(unsigned channels, unsigned banks)
{
    TimingParams p;
    p.numChannels = channels;
    p.banksPerChannel = banks;
    p.pageBytes = 2048;
    // 800 MHz command clock under a 3.2 GHz CPU clock.
    p.cpuPerDramCycle = 4;
    // 64-bit bus, DDR: 8 B x 2 transfers per DRAM cycle (BL=4 moves
    // 64 B, matching "BL (cycles) = 4" in Table IV).
    p.busBytesPerCycle = 16;
    p.tCL = p.tRCD = p.tRP = 9;
    p.tRAS = 24;
    p.tWR = 12;
    p.tCCD = 4;
    p.tRRD = 5;
    // 7.8 us at 800 MHz.
    p.tREFI = 6240;
    p.tRFC = 280;
    return p;
}

TimingParams
TimingParams::xpoint(unsigned channels, unsigned banks)
{
    // DDR-style electrical interface (same 800 MHz command clock and
    // 64-bit bus as the DDR3 preset) in front of 3DXPoint-class
    // media: ~150 ns reads, ~500 ns write commits, writes posted into
    // a bounded write-pending queue. No refresh.
    TimingParams p = ddr3_1600h(channels, banks);
    p.nvm = true;
    p.commandLevel = false;
    p.refreshEnabled = false;
    p.tNvmRead = 120;  // 150 ns at 800 MHz
    p.tNvmWrite = 400; // 500 ns at 800 MHz
    p.nvmWpqEntries = 16;
    p.nvmWpqHighWatermark = 12;
    return p;
}

} // namespace bmc::dram
