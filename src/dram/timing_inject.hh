/**
 * @file
 * Hidden fault-injection hook for the DRAM timing models.
 *
 * The protocol checker (src/check) is only trustworthy if it can be
 * shown to catch real timing bugs. This hook lets a test weaken one
 * specific DDR fence inside a channel model -- the model still emits
 * the full command stream, but schedules one class of command too
 * early -- so the checker's detection path can be exercised end to
 * end (including fuzzing and trace shrinking) without committing a
 * bug to the model itself.
 *
 * Selected via the BMC_CHECK_INJECT environment variable, read at
 * channel construction:
 *
 *   tfaw     CommandChannel ignores the four-activate window
 *   trcd     CAS may issue immediately after ACT (both models)
 *   trp      ACT may issue immediately after PRE (both models)
 *   refresh  refresh no longer blocks the banks for tRFC
 *
 * Never set outside tests; unset or empty means no injection.
 */

#ifndef BMC_DRAM_TIMING_INJECT_HH
#define BMC_DRAM_TIMING_INJECT_HH

#include <cstdint>

namespace bmc::dram
{

enum class TimingInject : std::uint8_t
{
    None,
    Tfaw,
    Trcd,
    Trp,
    Refresh,
};

/** Parse BMC_CHECK_INJECT; unknown values panic. */
TimingInject timingInjectFromEnv();

} // namespace bmc::dram

#endif // BMC_DRAM_TIMING_INJECT_HH
