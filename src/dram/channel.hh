/**
 * @file
 * Banked DRAM channel with FR-FCFS scheduling, open-page policy and
 * refresh.
 *
 * The channel is the serialization point of the model: each data
 * transfer reserves the channel data bus, while per-bank row-buffer
 * state machines (PRE -> ACT -> column) run concurrently so that
 * bank preparation overlaps transfers on other banks. Scheduling is
 * First-Ready FCFS [Rixner et al., ISCA'00]: among queued requests,
 * the oldest row-buffer hit wins; otherwise the oldest request.
 * Up to @c schedulerLookahead requests may be committed (reserved)
 * at once, modelling the command pipelining of a real controller.
 *
 * Refresh is applied lazily but exactly: before any service, all
 * refresh intervals (tREFI) that have elapsed are charged, closing
 * every row and blocking the banks for tRFC, as in Table IV
 * (tREFI = 7.8 us, tRFC = 280 nCK).
 */

#ifndef BMC_DRAM_CHANNEL_HH
#define BMC_DRAM_CHANNEL_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/channel_iface.hh"
#include "dram/request.hh"
#include "dram/timing_params.hh"

namespace bmc::dram
{

/** Activity counters consumed by the energy model (Section V-H). */
struct ActivityCounters
{
    std::uint64_t activates = 0;
    std::uint64_t precharges = 0;
    std::uint64_t columnReads = 0;
    std::uint64_t columnWrites = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
    std::uint64_t refreshes = 0;

    ActivityCounters &operator+=(const ActivityCounters &o);
};

/** One DRAM channel: N banks sharing a data bus. */
class Channel : public ChannelIface
{
  public:
    Channel(EventQueue &eq, const TimingParams &params,
            unsigned channel_id, stats::StatGroup &parent);

    /** Queue a request. ActivateOnly requests are served at once. */
    void enqueue(Request req) override;

    /** Pending (not yet reserved) request count. */
    size_t queueDepth() const override { return queue_.size(); }

    const ActivityCounters &activity() const override
    {
        return activity_;
    }

    /** Row-buffer hit rate over data (non-metadata) accesses. */
    double dataRowHitRate() const override;

    /** Row-buffer hit rate over metadata accesses. */
    double metaRowHitRate() const override;

    std::uint64_t dataAccesses() const override
    {
        return dataRowHits_.value() + dataRowMisses_.value();
    }
    std::uint64_t metaAccesses() const override
    {
        return metaRowHits_.value() + metaRowMisses_.value();
    }
    std::uint64_t dataRowHits() const override
    {
        return dataRowHits_.value();
    }
    std::uint64_t metaRowHits() const override
    {
        return metaRowHits_.value();
    }

    /** Mean ticks from enqueue to completion (reads and writes). */
    double avgServiceTicks() const override
    {
        return serviceTicks_.mean();
    }

  private:
    struct BankState
    {
        bool rowOpen = false;
        std::uint64_t openRow = 0;
        Tick nextActAllowed = 0; //!< earliest PRE/ACT sequence start
        Tick nextCasAllowed = 0; //!< tCCD fence between column cmds
        Tick actAt = 0;          //!< tick of the row-opening ACT
        Tick lastColAt = 0;      //!< last column command (tRTP)
        Tick lastWriteEnd = 0;   //!< last write burst end (tWR)
    };

    /** Apply all refresshes due at or before @p when. */
    void catchUpRefresh(Tick when);

    /** FR-FCFS pick: index into queue_, or npos if empty. */
    size_t pickNext() const;

    /** Reserve resources for one queued request; fire completion. */
    void serviceOne(size_t idx);

    /** Reserve/launch as much work as lookahead allows. */
    void trySchedule();

    /** Open @p row on @p bank starting no earlier than @p start.
     *  @return tick at which column commands may issue. */
    Tick openRow(BankState &bank, std::uint64_t row, Tick start,
                 bool &row_hit);

    EventQueue &eq_;
    TimingParams p_;
    unsigned id_;

    std::vector<BankState> banks_;
    std::deque<Request> queue_;
    Tick busFreeAt_ = 0;
    unsigned inFlight_ = 0;
    unsigned inFlightLow_ = 0;
    unsigned lookahead_ = 8;

    Tick nextRefreshAt_;

    ActivityCounters activity_;

    stats::StatGroup sg_;
    stats::Counter dataRowHits_;
    stats::Counter dataRowMisses_;
    stats::Counter metaRowHits_;
    stats::Counter metaRowMisses_;
    stats::Counter reads_;
    stats::Counter writes_;
    stats::Counter refreshCount_;
    stats::Average queueDelay_;
    stats::Average serviceTicks_;
};

} // namespace bmc::dram

#endif // BMC_DRAM_CHANNEL_HH
