/**
 * @file
 * Banked DRAM channel with FR-FCFS scheduling, open-page policy and
 * refresh.
 *
 * The channel is the serialization point of the model: each data
 * transfer reserves the channel data bus, while per-bank row-buffer
 * state machines (PRE -> ACT -> column) run concurrently so that
 * bank preparation overlaps transfers on other banks. Scheduling is
 * First-Ready FCFS [Rixner et al., ISCA'00]: among queued requests,
 * the oldest row-buffer hit wins; otherwise the oldest request.
 * Up to @c schedulerLookahead requests may be committed (reserved)
 * at once, modelling the command pipelining of a real controller.
 *
 * The scheduler is indexed: queued requests live in a recycled slot
 * pool threaded onto per-(bank, priority) FIFO lists plus per-(bank,
 * priority, row) FIFO lists reachable through an open-addressing row
 * table. On top of the lists, the pick-relevant facts -- the arrival
 * seq of each (bank, prio) FIFO head and of the oldest open-row hit
 * per (bank, prio) -- are mirrored into prio-major SoA arrays kept
 * current by link/unlink/row-transition hooks, so one FR-FCFS pick
 * is a cache-linear minimum scan over flat u64 arrays instead of
 * per-bank list and hash-table probes. The exact pick order of the
 * original linear scan is preserved (the arrival-order reference
 * scheduler is kept and can be cross-checked against the index with
 * setCrossCheck(); the differential test drives both on recorded
 * traces).
 *
 * Refresh is applied lazily but exactly: before any service, all
 * refresh intervals (tREFI) that have elapsed are charged, closing
 * every row and blocking the banks for tRFC, as in Table IV
 * (tREFI = 7.8 us, tRFC = 280 nCK).
 */

#ifndef BMC_DRAM_CHANNEL_HH
#define BMC_DRAM_CHANNEL_HH

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/channel_iface.hh"
#include "dram/cmd_observer.hh"
#include "dram/request.hh"
#include "dram/timing_inject.hh"
#include "dram/timing_params.hh"

namespace bmc::dram
{

/** Activity counters consumed by the energy model (Section V-H). */
struct ActivityCounters
{
    std::uint64_t activates = 0;
    std::uint64_t precharges = 0;
    std::uint64_t columnReads = 0;
    std::uint64_t columnWrites = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
    std::uint64_t refreshes = 0;

    ActivityCounters &operator+=(const ActivityCounters &o);
};

/** One DRAM channel: N banks sharing a data bus. */
class Channel : public ChannelIface
{
  public:
    Channel(EventQueue &eq, const TimingParams &params,
            unsigned channel_id, stats::StatGroup &parent);

    /** Queue a request. ActivateOnly requests are served at once. */
    void enqueue(Request req) override;

    /** Pending (not yet reserved) request count. */
    size_t queueDepth() const override { return queued_; }

    size_t peakQueueDepth() const override { return peakQueued_; }

    const ActivityCounters &activity() const override
    {
        return activity_;
    }

    /** Row-buffer hit rate over data (non-metadata) accesses. */
    double dataRowHitRate() const override;

    /** Row-buffer hit rate over metadata accesses. */
    double metaRowHitRate() const override;

    std::uint64_t dataAccesses() const override
    {
        return dataRowHits_.value() + dataRowMisses_.value();
    }
    std::uint64_t metaAccesses() const override
    {
        return metaRowHits_.value() + metaRowMisses_.value();
    }
    std::uint64_t dataRowHits() const override
    {
        return dataRowHits_.value();
    }
    std::uint64_t metaRowHits() const override
    {
        return metaRowHits_.value();
    }

    /** Mean ticks from enqueue to completion (reads and writes). */
    double avgServiceTicks() const override
    {
        return serviceTicks_.mean();
    }

    unsigned numBanks() const override
    {
        return static_cast<unsigned>(banks_.size());
    }

    /**
     * Cumulative non-overlapping busy ticks of bank @p bank, charged
     * at reservation time (so a sample taken mid-burst already
     * includes the reserved remainder of that burst).
     */
    std::uint64_t bankBusyTicks(unsigned bank) const override
    {
        return banks_.at(bank).busyTicks;
    }

    void setTracer(ChromeTracer *tracer) override
    {
        tracer_ = tracer;
    }

    void setCommandObserver(CmdObserver *obs) override
    {
        cmdObs_ = obs;
    }

    /**
     * When enabled, every pick of the indexed scheduler is verified
     * against the original arrival-order linear scan; a divergence
     * panics. Test-only (maintains a shadow arrival queue).
     */
    void setCrossCheck(bool enabled);

    /** Per-bank (rowOpen, openRow) checkpoint section. */
    void serializeBankState(BinWriter &w) const override;
    void deserializeBankState(BinReader &r) override;

  private:
    struct BankState
    {
        bool rowOpen = false;
        std::uint64_t openRow = 0;
        Tick nextActAllowed = 0; //!< earliest PRE/ACT sequence start
        Tick nextCasAllowed = 0; //!< tCCD fence between column cmds
        Tick actAt = 0;          //!< tick of the row-opening ACT
        Tick lastColAt = 0;      //!< last column command (tRTP)
        Tick lastWriteEnd = 0;   //!< last write burst end (tWR)
        Tick busyUntil = 0;      //!< end of the last charged interval
        std::uint64_t busyTicks = 0; //!< accumulated busy time
    };

    static constexpr std::uint32_t npos32 = 0xffffffffu;

    /** One queued request, threaded onto two intrusive FIFO lists. */
    struct Slot
    {
        Request req;
        std::uint64_t seq = 0;
        std::uint32_t bankPrev = npos32; //!< (bank, prio) FIFO links
        std::uint32_t bankNext = npos32;
        std::uint32_t rowPrev = npos32; //!< (bank, prio, row) links
        std::uint32_t rowNext = npos32;
    };

    struct FifoList
    {
        std::uint32_t head = npos32;
        std::uint32_t tail = npos32;
    };

    /** Open-addressing row-index entry: (bank, prio, row) -> FIFO. */
    struct RowEntry
    {
        std::uint64_t row = 0;
        std::uint32_t bankPrio = 0;
        FifoList list;
        bool used = false;
    };

    // ------------------------- slot pool and index maintenance ----
    std::uint32_t allocSlot();
    void freeSlot(std::uint32_t idx);
    /** Thread @p idx onto its bank FIFO and row FIFO. */
    void linkSlot(std::uint32_t idx);
    /** Remove @p idx from both lists (erases empty row entries). */
    void unlinkSlot(std::uint32_t idx);

    static std::uint32_t
    bankPrioOf(const Request &req)
    {
        return (req.loc.bank << 1) | (req.lowPriority ? 1u : 0u);
    }

    /** SoA lane for (bank, prio): prio-major so each priority class
     *  scans one contiguous run of banks. */
    std::size_t
    soaIndex(std::uint32_t bank_prio) const
    {
        return (bank_prio & 1u) * banks_.size() + (bank_prio >> 1);
    }

    /** Recompute the open-row-hit SoA lanes of @p bank_id (both
     *  priorities) from the row table; call after the bank's open
     *  row changes. */
    void refreshRowHit(unsigned bank_id);

    std::size_t rowHome(std::uint32_t bank_prio,
                        std::uint64_t row) const;
    /** Table position of (bank_prio, row), or npos if absent. */
    std::size_t rowFind(std::uint32_t bank_prio,
                        std::uint64_t row) const;
    /** Find-or-insert; may grow the table. */
    std::size_t rowFindOrInsert(std::uint32_t bank_prio,
                                std::uint64_t row);
    /** Backward-shift deletion keeping probe chains intact. */
    void rowErase(std::size_t pos);
    void rowGrow();

    /** Apply all refreshes due at or before @p when. */
    void catchUpRefresh(Tick when);

    /** Indexed FR-FCFS pick: slot index, or npos32 if empty. */
    std::uint32_t pickNext() const;

    /** The original O(queue) arrival-order scan (cross-check). */
    std::uint32_t pickNextReference() const;

    /** Reserve resources for one queued request; fire completion. */
    void serviceOne(std::uint32_t idx);

    /** Reserve/launch as much work as lookahead allows. */
    void trySchedule();

    /** Open @p row on bank @p bank_id starting no earlier than
     *  @p start. @return tick at which column commands may issue. */
    Tick openRow(BankState &bank, unsigned bank_id,
                 std::uint64_t row, Tick start, bool &row_hit);

    /** Charge [start, end) as busy time, clipping any overlap with
     *  the interval already charged. */
    static void chargeBusy(BankState &bank, Tick start, Tick end);

    EventQueue &eq_;
    TimingParams p_;
    unsigned id_;

    std::vector<BankState> banks_;

    std::vector<Slot> slots_;
    std::vector<std::uint32_t> freeSlots_;
    /** One FIFO per (bank, priority): index 2*bank + prio. */
    std::vector<FifoList> bankFifo_;
    /** Arrival seq that never matches a queued request. */
    static constexpr std::uint64_t kNoSeq = ~0ULL;
    /** SoA pick state, soaIndex()-indexed (prio-major, kNoSeq /
     *  npos32 when the lane is empty): seq and slot of each (bank,
     *  prio) FIFO head, and of the oldest request targeting the
     *  bank's open row. pickNext() reduces to min-scans over the
     *  seq arrays. */
    std::vector<std::uint64_t> headSeq_;
    std::vector<std::uint32_t> headIdx_;
    std::vector<std::uint64_t> rowHitSeq_;
    std::vector<std::uint32_t> rowHitIdx_;
    std::vector<RowEntry> rowTable_; //!< power-of-two capacity
    std::size_t rowMask_ = 0;
    std::size_t rowUsed_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::size_t queued_ = 0;
    std::size_t peakQueued_ = 0;

    bool crossCheck_ = false;
    std::deque<std::uint32_t> shadowQueue_; //!< arrival order (test)

    Tick busFreeAt_ = 0;
    unsigned inFlight_ = 0;
    unsigned inFlightLow_ = 0;
    unsigned lookahead_ = 8;

    Tick nextRefreshAt_;

    ChromeTracer *tracer_ = nullptr;
    CmdObserver *cmdObs_ = nullptr;
    TimingInject inject_ = TimingInject::None;

    ActivityCounters activity_;

    stats::StatGroup sg_;
    stats::Counter dataRowHits_;
    stats::Counter dataRowMisses_;
    stats::Counter metaRowHits_;
    stats::Counter metaRowMisses_;
    stats::Counter reads_;
    stats::Counter writes_;
    stats::Counter refreshCount_;
    stats::Average queueDelay_;
    stats::Average serviceTicks_;
};

} // namespace bmc::dram

#endif // BMC_DRAM_CHANNEL_HH
