#include "dram/dram_system.hh"

#include "dram/command_channel.hh"
#include "dram/nvm_channel.hh"

#include "common/logging.hh"

namespace bmc::dram
{

DramSystem::DramSystem(EventQueue &eq, const TimingParams &params,
                       const std::string &name,
                       stats::StatGroup &parent)
    : params_(params),
      map_(params.pageBytes, params.numChannels, params.banksPerChannel),
      sg_(name, &parent)
{
    channels_.reserve(params.numChannels);
    for (unsigned c = 0; c < params.numChannels; ++c) {
        if (params.nvm) {
            channels_.push_back(
                std::make_unique<NvmChannel>(eq, params, c, sg_));
        } else if (params.commandLevel) {
            channels_.push_back(
                std::make_unique<CommandChannel>(eq, params, c, sg_));
        } else {
            channels_.push_back(
                std::make_unique<Channel>(eq, params, c, sg_));
        }
    }
}

void
DramSystem::enqueue(Request req)
{
    bmc_assert(req.loc.channel < channels_.size(),
               "channel %u out of range", req.loc.channel);
    channels_[req.loc.channel]->enqueue(std::move(req));
}

ActivityCounters
DramSystem::totalActivity() const
{
    ActivityCounters total;
    for (const auto &ch : channels_)
        total += ch->activity();
    return total;
}

double
DramSystem::dataRowHitRate() const
{
    std::uint64_t hits = 0;
    std::uint64_t total = 0;
    for (const auto &ch : channels_) {
        hits += ch->dataRowHits();
        total += ch->dataAccesses();
    }
    return total ? static_cast<double>(hits) / static_cast<double>(total)
                 : 0.0;
}

double
DramSystem::metaRowHitRate() const
{
    std::uint64_t hits = 0;
    std::uint64_t total = 0;
    for (const auto &ch : channels_) {
        hits += ch->metaRowHits();
        total += ch->metaAccesses();
    }
    return total ? static_cast<double>(hits) / static_cast<double>(total)
                 : 0.0;
}

} // namespace bmc::dram
