#include "dram/command_channel.hh"

#include <algorithm>

#include "common/logging.hh"

namespace bmc::dram
{

CommandChannel::CommandChannel(EventQueue &eq,
                               const TimingParams &params,
                               unsigned channel_id,
                               stats::StatGroup &parent)
    : eq_(eq), p_(params), id_(channel_id),
      banks_(params.banksPerChannel),
      nextRefreshAt_(params.toTicks(params.tREFI)),
      sg_("cmdchannel" + std::to_string(channel_id), &parent),
      dataRowHits_(sg_, "data_row_hits",
                   "row-buffer hits for data accesses"),
      dataRowMisses_(sg_, "data_row_misses",
                     "row-buffer misses for data accesses"),
      metaRowHits_(sg_, "meta_row_hits",
                   "row-buffer hits for metadata accesses"),
      metaRowMisses_(sg_, "meta_row_misses",
                     "row-buffer misses for metadata accesses"),
      reads_(sg_, "reads", "read requests serviced"),
      writes_(sg_, "writes", "write requests serviced"),
      refreshCount_(sg_, "refreshes", "refresh operations"),
      actCommands_(sg_, "act_commands", "ACT commands issued"),
      preCommands_(sg_, "pre_commands", "PRE commands issued"),
      serviceTicks_(sg_, "service_ticks",
                    "ticks from enqueue to completion")
{
    bmc_assert(params.banksPerChannel > 0, "channel needs banks");
    inject_ = timingInjectFromEnv();
}

double
CommandChannel::dataRowHitRate() const
{
    const auto total = dataAccesses();
    return total ? static_cast<double>(dataRowHits_.value()) / total
                 : 0.0;
}

double
CommandChannel::metaRowHitRate() const
{
    const auto total = metaAccesses();
    return total ? static_cast<double>(metaRowHits_.value()) / total
                 : 0.0;
}

void
CommandChannel::catchUpRefresh(Tick now)
{
    if (!p_.refreshEnabled)
        return;
    const Tick trefi = p_.toTicks(p_.tREFI);
    const Tick trfc = p_.toTicks(p_.tRFC);
    while (nextRefreshAt_ <= now) {
        for (auto &bank : banks_) {
            bank.rowOpen = false;
            if (inject_ != TimingInject::Refresh) {
                bank.readyForAct = std::max(bank.readyForAct,
                                            nextRefreshAt_ + trfc);
            }
        }
        if (cmdObs_) {
            CmdEvent ev;
            ev.kind = CmdKind::Ref;
            ev.channel = id_;
            ev.at = nextRefreshAt_;
            cmdObs_->onCommand(ev);
        }
        nextRefreshAt_ += trefi;
        ++refreshCount_;
        ++activity_.refreshes;
    }
}

Tick
CommandChannel::actAllowedAt(const BankState &bank) const
{
    Tick t = bank.readyForAct;
    if (!recentActs_.empty())
        t = std::max(t, recentActs_.back() + p_.toTicks(p_.tRRD));
    if (recentActs_.size() >= 4 && inject_ != TimingInject::Tfaw)
        t = std::max(t, recentActs_.front() + p_.toTicks(p_.tFAW));
    return t;
}

Tick
CommandChannel::casAllowedAt(const BankState &bank,
                             const Txn &txn) const
{
    Tick t = std::max(bank.readyForCas,
                      lastColIssueAt_ + p_.toTicks(p_.tCCD));
    if (txn.req.kind == ReqKind::Read) {
        // tWTR fence after the last write burst.
        t = std::max(t, lastWriteEndAt_ + p_.toTicks(p_.tWTR));
        // The read burst must find the data bus free.
        t = std::max(t,
                     dataBusFreeAt_ > p_.toTicks(p_.tCL)
                         ? dataBusFreeAt_ - p_.toTicks(p_.tCL)
                         : Tick{0});
    } else {
        // A write burst cannot start while a read still owns the
        // bus, and the bus must be free at data time.
        t = std::max(t, lastReadEndAt_ > p_.toTicks(p_.tCWL)
                            ? lastReadEndAt_ - p_.toTicks(p_.tCWL)
                            : Tick{0});
        t = std::max(t,
                     dataBusFreeAt_ > p_.toTicks(p_.tCWL)
                         ? dataBusFreeAt_ - p_.toTicks(p_.tCWL)
                         : Tick{0});
    }
    return t;
}

void
CommandChannel::issueAct(Txn &txn, BankState &bank, Tick now)
{
    bank.rowOpen = true;
    bank.openRow = txn.req.loc.row;
    bank.readyForCas =
        inject_ == TimingInject::Trcd ? now
                                      : now + p_.toTicks(p_.tRCD);
    bank.readyForPre = std::max(bank.readyForPre,
                                now + p_.toTicks(p_.tRAS));
    recentActs_.push_back(now);
    if (recentActs_.size() > 4)
        recentActs_.pop_front();
    txn.touchedBank = true;
    ++actCommands_;
    ++activity_.activates;
    if (cmdObs_) {
        CmdEvent ev;
        ev.kind = CmdKind::Act;
        ev.channel = id_;
        ev.bank = txn.req.loc.bank;
        ev.row = txn.req.loc.row;
        ev.at = now;
        cmdObs_->onCommand(ev);
    }
}

void
CommandChannel::issuePre(Txn &txn, BankState &bank, Tick now)
{
    const std::uint64_t closed_row = bank.openRow;
    bank.rowOpen = false;
    if (inject_ != TimingInject::Trp) {
        bank.readyForAct = std::max(bank.readyForAct,
                                    now + p_.toTicks(p_.tRP));
    }
    txn.touchedBank = true;
    ++preCommands_;
    ++activity_.precharges;
    if (cmdObs_) {
        CmdEvent ev;
        ev.kind = CmdKind::Pre;
        ev.channel = id_;
        ev.bank = txn.req.loc.bank;
        ev.row = closed_row;
        ev.at = now;
        cmdObs_->onCommand(ev);
    }
}

void
CommandChannel::issueCas(size_t idx, BankState &bank, Tick now)
{
    Txn txn = std::move(queue_[idx]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));

    const bool is_write = txn.req.kind == ReqKind::Write;
    const Tick data_start =
        now + p_.toTicks(is_write ? p_.tCWL : p_.tCL);
    const Tick data_end = data_start + p_.transferTicks(txn.req.bytes);

    dataBusFreeAt_ = data_end;
    lastColIssueAt_ = now;
    if (is_write) {
        lastWriteEndAt_ = data_end;
        bank.readyForPre = std::max(bank.readyForPre,
                                    data_end + p_.toTicks(p_.tWR));
        ++writes_;
        ++activity_.columnWrites;
        activity_.bytesWritten += txn.req.bytes;
    } else {
        lastReadEndAt_ = data_end;
        bank.readyForPre = std::max(bank.readyForPre,
                                    now + p_.toTicks(p_.tRTP));
        ++reads_;
        ++activity_.columnReads;
        activity_.bytesRead += txn.req.bytes;
    }

    // A transaction that never needed an ACT/PRE was a row hit.
    if (txn.req.isMetadata) {
        if (txn.touchedBank)
            ++metaRowMisses_;
        else
            ++metaRowHits_;
    } else {
        if (txn.touchedBank)
            ++dataRowMisses_;
        else
            ++dataRowHits_;
    }
    serviceTicks_.sample(
        static_cast<double>(data_end - txn.req.enqueueTick));

    if (cmdObs_) {
        CmdEvent ev;
        ev.kind = is_write ? CmdKind::Wr : CmdKind::Rd;
        ev.channel = id_;
        ev.bank = txn.req.loc.bank;
        ev.row = txn.req.loc.row;
        ev.at = now;
        ev.dataStart = data_start;
        ev.dataEnd = data_end;
        ev.bytes = txn.req.bytes;
        cmdObs_->onCommand(ev);
    }

    if (txn.req.onComplete) {
        auto cb = std::move(txn.req.onComplete);
        auto done = [cb = std::move(cb), data_end] { cb(data_end); };
        static_assert(
            EventQueue::Callback::fitsInline<decltype(done)>(),
            "CAS completion closure must stay within the pooled "
            "node's inline budget -- this fires once per transaction");
        eq_.scheduleAt(data_end, std::move(done));
    }
}

std::vector<size_t>
CommandChannel::pickOrder() const
{
    // FR-FCFS with demand priority: row-hitting demand first, then
    // oldest demand, then row-hitting background, then oldest
    // background.
    std::vector<size_t> order;
    order.reserve(queue_.size());
    auto push_matching = [&](bool low, bool want_rowhit) {
        for (size_t i = 0; i < queue_.size(); ++i) {
            const auto &txn = queue_[i];
            if (txn.req.lowPriority != low)
                continue;
            const auto &bank = banks_[txn.req.loc.bank];
            const bool row_hit =
                bank.rowOpen && bank.openRow == txn.req.loc.row;
            if (row_hit == want_rowhit)
                order.push_back(i);
        }
    };
    push_matching(false, true);
    push_matching(false, false);
    push_matching(true, true);
    push_matching(true, false);
    return order;
}

void
CommandChannel::scheduleAt(Tick when)
{
    when = std::max(when, eq_.now());
    if (wakeScheduled_ && wakeAt_ <= when)
        return;
    wakeScheduled_ = true;
    wakeAt_ = when;
    eq_.scheduleAt(when, [this, when] {
        if (wakeAt_ == when)
            wakeScheduled_ = false;
        schedule();
    });
}

void
CommandChannel::schedule()
{
    if (queue_.empty())
        return;

    const Tick now = eq_.now();
    catchUpRefresh(now);

    if (cmdBusFreeAt_ > now) {
        scheduleAt(cmdBusFreeAt_);
        return;
    }

    // Find the first issuable command in priority order; remember
    // the earliest future time anything could issue.
    Tick earliest = maxTick;
    for (const size_t idx : pickOrder()) {
        Txn &txn = queue_[idx];
        BankState &bank = banks_[txn.req.loc.bank];

        if (bank.rowOpen && bank.openRow == txn.req.loc.row) {
            if (txn.req.kind == ReqKind::ActivateOnly) {
                // The row is (now) open: the speculative activate is
                // satisfied without a command.
                Txn done_txn = std::move(queue_[idx]);
                queue_.erase(queue_.begin() +
                             static_cast<std::ptrdiff_t>(idx));
                if (done_txn.req.onComplete) {
                    auto cb = std::move(done_txn.req.onComplete);
                    const Tick ready =
                        std::max(now, bank.readyForCas);
                    auto done = [cb = std::move(cb), ready] {
                        cb(ready);
                    };
                    static_assert(
                        EventQueue::Callback::fitsInline<
                            decltype(done)>(),
                        "satisfied-ACT completion closure must stay "
                        "within the pooled node's inline budget");
                    eq_.scheduleAt(ready, std::move(done));
                }
                scheduleAt(now);
                return;
            }
            const Tick at = casAllowedAt(bank, txn);
            if (at <= now) {
                issueCas(idx, bank, now);
                cmdBusFreeAt_ = now + p_.toTicks(1);
                scheduleAt(cmdBusFreeAt_);
                return;
            }
            earliest = std::min(earliest, at);
        } else if (bank.rowOpen) {
            const Tick at = bank.readyForPre;
            if (at <= now) {
                issuePre(txn, bank, now);
                cmdBusFreeAt_ = now + p_.toTicks(1);
                scheduleAt(cmdBusFreeAt_);
                return;
            }
            earliest = std::min(earliest, at);
        } else {
            const Tick at = actAllowedAt(bank);
            if (at <= now) {
                issueAct(txn, bank, now);
                cmdBusFreeAt_ = now + p_.toTicks(1);
                scheduleAt(cmdBusFreeAt_);
                return;
            }
            earliest = std::min(earliest, at);
        }
    }

    if (earliest != maxTick)
        scheduleAt(earliest);
}

void
CommandChannel::enqueue(Request req)
{
    bmc_assert(req.loc.bank < banks_.size(),
               "bank %u out of range on channel %u", req.loc.bank,
               id_);
    req.enqueueTick = eq_.now();

    // ActivateOnly requests queue and compete through FR-FCFS like
    // any other transaction (see Channel::enqueue).
    Txn txn;
    txn.req = std::move(req);
    queue_.push_back(std::move(txn));
    if (queue_.size() > peakQueued_)
        peakQueued_ = queue_.size();
    schedule();
}

} // namespace bmc::dram
