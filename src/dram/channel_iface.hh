/**
 * @file
 * Interface shared by the two DRAM channel timing models:
 *
 *  - Channel (channel.hh): transaction-granularity reservation model
 *    -- fast, captures row-buffer state, bank parallelism, bus
 *    occupancy, refresh and demand priority;
 *  - CommandChannel (command_channel.hh): command-granularity model
 *    -- additionally enforces tRRD, tFAW, tCCD, tWTR, tRTP, tCWL and
 *    single-command-per-cycle arbitration.
 *
 * DramSystem selects the implementation via
 * TimingParams::commandLevel.
 */

#ifndef BMC_DRAM_CHANNEL_IFACE_HH
#define BMC_DRAM_CHANNEL_IFACE_HH

#include <cstdint>

#include "common/binio.hh"
#include "dram/request.hh"

namespace bmc
{
class ChromeTracer;
}

namespace bmc::dram
{

struct ActivityCounters;
class CmdObserver;

/** Common surface of a DRAM channel timing model. */
class ChannelIface
{
  public:
    virtual ~ChannelIface() = default;

    /** Queue a request; ActivateOnly requests are speculative. */
    virtual void enqueue(Request req) = 0;

    /** Pending (unreserved/unissued) request count. */
    virtual size_t queueDepth() const = 0;

    virtual const ActivityCounters &activity() const = 0;

    virtual double dataRowHitRate() const = 0;
    virtual double metaRowHitRate() const = 0;
    virtual std::uint64_t dataAccesses() const = 0;
    virtual std::uint64_t metaAccesses() const = 0;
    virtual std::uint64_t dataRowHits() const = 0;
    virtual std::uint64_t metaRowHits() const = 0;

    /** Mean ticks from enqueue to completion. */
    virtual double avgServiceTicks() const = 0;

    // Observability hooks; defaulted no-ops so timing models without
    // per-bank bookkeeping (CommandChannel) remain valid.

    /** Banks modelled, 0 if the model keeps no per-bank occupancy. */
    virtual unsigned numBanks() const { return 0; }

    /** Peak queueDepth() ever observed (self-profiling gauge). */
    virtual size_t peakQueueDepth() const { return 0; }

    /** Cumulative ticks bank @p bank spent busy (act/col/burst). */
    virtual std::uint64_t bankBusyTicks(unsigned bank) const
    {
        (void)bank;
        return 0;
    }

    /** Attach a lifecycle tracer (nullptr detaches). */
    virtual void setTracer(ChromeTracer *tracer) { (void)tracer; }

    /**
     * Attach a command-stream observer (nullptr detaches); see
     * cmd_observer.hh for the per-model stream semantics. One
     * pointer test per command when detached.
     */
    virtual void setCommandObserver(CmdObserver *obs) { (void)obs; }

    /**
     * Append this channel's per-bank row state (open/closed + open
     * row) to @p w for a checkpoint. Models without per-bank row
     * bookkeeping write an empty section. Functional warm-up never
     * touches timing state, so warm checkpoints always carry
     * all-closed banks; that is what makes them shareable across
     * timing-model variants (see deserializeBankState()).
     */
    virtual void serializeBankState(BinWriter &w) const
    {
        w.u32(0); // no per-bank state in this model
    }

    /**
     * Restore a bank section written by serializeBankState() -- by
     * any channel model. A bank-count mismatch (different model or
     * geometry) is tolerated only when every stored bank is closed;
     * an open row cannot be re-imposed on a foreign model, so that
     * case is fatal.
     */
    virtual void deserializeBankState(BinReader &r)
    {
        discardBankState(r);
    }

    /**
     * Consume one serializeBankState() section without applying it
     * (a channel present in the checkpoint but absent from this
     * machine). Open rows make the section non-discardable: they
     * represent state this machine cannot carry.
     */
    static void
    discardBankState(BinReader &r)
    {
        const std::uint32_t n = r.u32();
        for (std::uint32_t b = 0; b < n; ++b) {
            const std::uint8_t row_open = r.u8();
            r.u64(); // open row id
            if (row_open) {
                bmc_fatal("checkpoint bank %u has an open row, which "
                          "this channel model cannot restore",
                          b);
            }
        }
    }
};

} // namespace bmc::dram

#endif // BMC_DRAM_CHANNEL_IFACE_HH
