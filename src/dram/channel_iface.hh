/**
 * @file
 * Interface shared by the two DRAM channel timing models:
 *
 *  - Channel (channel.hh): transaction-granularity reservation model
 *    -- fast, captures row-buffer state, bank parallelism, bus
 *    occupancy, refresh and demand priority;
 *  - CommandChannel (command_channel.hh): command-granularity model
 *    -- additionally enforces tRRD, tFAW, tCCD, tWTR, tRTP, tCWL and
 *    single-command-per-cycle arbitration.
 *
 * DramSystem selects the implementation via
 * TimingParams::commandLevel.
 */

#ifndef BMC_DRAM_CHANNEL_IFACE_HH
#define BMC_DRAM_CHANNEL_IFACE_HH

#include <cstdint>

#include "dram/request.hh"

namespace bmc
{
class ChromeTracer;
}

namespace bmc::dram
{

struct ActivityCounters;
class CmdObserver;

/** Common surface of a DRAM channel timing model. */
class ChannelIface
{
  public:
    virtual ~ChannelIface() = default;

    /** Queue a request; ActivateOnly requests are speculative. */
    virtual void enqueue(Request req) = 0;

    /** Pending (unreserved/unissued) request count. */
    virtual size_t queueDepth() const = 0;

    virtual const ActivityCounters &activity() const = 0;

    virtual double dataRowHitRate() const = 0;
    virtual double metaRowHitRate() const = 0;
    virtual std::uint64_t dataAccesses() const = 0;
    virtual std::uint64_t metaAccesses() const = 0;
    virtual std::uint64_t dataRowHits() const = 0;
    virtual std::uint64_t metaRowHits() const = 0;

    /** Mean ticks from enqueue to completion. */
    virtual double avgServiceTicks() const = 0;

    // Observability hooks; defaulted no-ops so timing models without
    // per-bank bookkeeping (CommandChannel) remain valid.

    /** Banks modelled, 0 if the model keeps no per-bank occupancy. */
    virtual unsigned numBanks() const { return 0; }

    /** Cumulative ticks bank @p bank spent busy (act/col/burst). */
    virtual std::uint64_t bankBusyTicks(unsigned bank) const
    {
        (void)bank;
        return 0;
    }

    /** Attach a lifecycle tracer (nullptr detaches). */
    virtual void setTracer(ChromeTracer *tracer) { (void)tracer; }

    /**
     * Attach a command-stream observer (nullptr detaches); see
     * cmd_observer.hh for the per-model stream semantics. One
     * pointer test per command when detached.
     */
    virtual void setCommandObserver(CmdObserver *obs) { (void)obs; }
};

} // namespace bmc::dram

#endif // BMC_DRAM_CHANNEL_IFACE_HH
