/**
 * @file
 * Physical-address to DRAM-coordinate interleaving.
 *
 * Implements the paper's "row-rank-bank-mc-column" interleave
 * (Table IV): the column bits are least significant, so an entire
 * DRAM page of consecutive addresses lands in one (channel, bank,
 * row); successive pages then stripe across memory controllers,
 * banks and ranks before advancing the row. Ranks are folded into
 * the bank dimension (a rank contributes banks, its bus-turnaround
 * cost is not modelled separately).
 */

#ifndef BMC_DRAM_ADDRESS_MAP_HH
#define BMC_DRAM_ADDRESS_MAP_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/request.hh"

namespace bmc::dram
{

/** Maps byte addresses to (channel, bank, row) coordinates. */
class AddressMap
{
  public:
    /**
     * @param page_bytes bytes per DRAM row
     * @param channels   number of memory controllers / channels
     * @param banks      banks per channel (ranks folded in)
     */
    AddressMap(std::uint32_t page_bytes, unsigned channels,
               unsigned banks);

    /** Coordinates of the page containing @p addr. */
    Location locate(Addr addr) const;

    /** Byte offset of @p addr within its DRAM page. */
    std::uint32_t pageOffset(Addr addr) const;

    /**
     * Inverse of locate()/pageOffset(): the byte address at
     * @p page_offset inside the page at @p loc. For every address a,
     * addressOf(locate(a), pageOffset(a)) == a.
     */
    Addr addressOf(const Location &loc,
                   std::uint32_t page_offset = 0) const;

    std::uint32_t pageBytes() const { return pageBytes_; }
    unsigned channels() const { return channels_; }
    unsigned banks() const { return banks_; }

  private:
    std::uint32_t pageBytes_;
    unsigned channels_;
    unsigned banks_;
};

} // namespace bmc::dram

#endif // BMC_DRAM_ADDRESS_MAP_HH
