/**
 * @file
 * A complete DRAM subsystem: a set of identically-parameterized
 * channels plus aggregate statistics. Instantiated twice per
 * simulated machine -- once for the die-stacked DRAM cache and once
 * for the off-chip main memory (different TimingParams presets).
 */

#ifndef BMC_DRAM_DRAM_SYSTEM_HH
#define BMC_DRAM_DRAM_SYSTEM_HH

#include <memory>
#include <vector>

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "dram/address_map.hh"
#include "dram/channel.hh"
#include "dram/channel_iface.hh"
#include "dram/request.hh"
#include "dram/timing_params.hh"

namespace bmc::dram
{

/** Multi-channel DRAM device group. */
class DramSystem
{
  public:
    DramSystem(EventQueue &eq, const TimingParams &params,
               const std::string &name, stats::StatGroup &parent);

    /** Route a request to its channel. */
    void enqueue(Request req);

    const TimingParams &params() const { return params_; }
    const AddressMap &addressMap() const { return map_; }

    unsigned numChannels() const
    {
        return static_cast<unsigned>(channels_.size());
    }
    ChannelIface &channel(unsigned i) { return *channels_.at(i); }
    const ChannelIface &channel(unsigned i) const
    {
        return *channels_.at(i);
    }

    /** Attach a lifecycle tracer to every channel (nullptr detaches). */
    void setTracer(ChromeTracer *tracer)
    {
        for (auto &c : channels_)
            c->setTracer(tracer);
    }

    /** Attach a command observer to every channel (nullptr detaches). */
    void setCommandObserver(CmdObserver *obs)
    {
        for (auto &c : channels_)
            c->setCommandObserver(obs);
    }

    /** Sum of per-channel activity counters. */
    ActivityCounters totalActivity() const;

    /** Aggregate row-buffer hit rate over data accesses. */
    double dataRowHitRate() const;

    /** Aggregate row-buffer hit rate over metadata accesses. */
    double metaRowHitRate() const;

  private:
    TimingParams params_;
    AddressMap map_;
    stats::StatGroup sg_;
    std::vector<std::unique_ptr<ChannelIface>> channels_;
};

} // namespace bmc::dram

#endif // BMC_DRAM_DRAM_SYSTEM_HH
