/**
 * @file
 * Command-granularity DRAM channel model.
 *
 * Where the reservation-model Channel commits whole transactions,
 * this model arbitrates individual DRAM commands on a shared command
 * bus (one command per DRAM clock) and enforces the full first-order
 * DDR constraint set:
 *
 *   ACT:  tRCD to CAS, tRAS to PRE, tRRD between ACTs, at most four
 *         ACTs per tFAW window;
 *   PRE:  tRP to the next ACT; delayed by tRAS, tWR (after writes)
 *         and tRTP (after reads);
 *   RD:   data after tCL; tCCD between column commands; tWTR after
 *         the last write burst;
 *   WR:   data after tCWL; write-recovery tWR before PRE; cannot
 *         start while a read burst still owns the bus.
 *
 * Scheduling remains FR-FCFS with demand-over-background priority,
 * applied per command: the oldest row-hitting demand transaction
 * issues its column command first; otherwise the scheduler prepares
 * (PRE/ACT) the oldest transaction whose bank can accept a command.
 *
 * Select with TimingParams::commandLevel = true. The model is ~2-4x
 * slower to simulate than Channel and is used for validation runs
 * and the model-fidelity bench.
 */

#ifndef BMC_DRAM_COMMAND_CHANNEL_HH
#define BMC_DRAM_COMMAND_CHANNEL_HH

#include <deque>
#include <vector>

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/channel.hh" // ActivityCounters
#include "dram/channel_iface.hh"
#include "dram/timing_params.hh"

namespace bmc::dram
{

/** DDR command-level channel. */
class CommandChannel : public ChannelIface
{
  public:
    CommandChannel(EventQueue &eq, const TimingParams &params,
                   unsigned channel_id, stats::StatGroup &parent);

    void enqueue(Request req) override;

    size_t queueDepth() const override { return queue_.size(); }
    size_t peakQueueDepth() const override { return peakQueued_; }
    const ActivityCounters &activity() const override
    {
        return activity_;
    }
    double dataRowHitRate() const override;
    double metaRowHitRate() const override;
    std::uint64_t dataAccesses() const override
    {
        return dataRowHits_.value() + dataRowMisses_.value();
    }
    std::uint64_t metaAccesses() const override
    {
        return metaRowHits_.value() + metaRowMisses_.value();
    }
    std::uint64_t dataRowHits() const override
    {
        return dataRowHits_.value();
    }
    std::uint64_t metaRowHits() const override
    {
        return metaRowHits_.value();
    }
    double avgServiceTicks() const override
    {
        return serviceTicks_.mean();
    }

    void setCommandObserver(CmdObserver *obs) override
    {
        cmdObs_ = obs;
    }

  private:
    struct BankState
    {
        bool rowOpen = false;
        std::uint64_t openRow = 0;
        Tick readyForCas = 0; //!< tRCD after ACT
        Tick readyForPre = 0; //!< tRAS / tWR / tRTP fences
        Tick readyForAct = 0; //!< tRP after PRE, refresh end
    };

    struct Txn
    {
        Request req;
        bool touchedBank = false; //!< issued an ACT/PRE (row miss)
        bool statsCounted = false;
    };

    /** One scheduling attempt; issues at most one command. */
    void schedule();
    /** Arrange the next schedule() call no earlier than @p when. */
    void scheduleAt(Tick when);

    void catchUpRefresh(Tick now);

    /** Earliest tick an ACT may issue (tRRD + tFAW fences). */
    Tick actAllowedAt(const BankState &bank) const;
    /** Earliest tick the column command of @p txn may issue. */
    Tick casAllowedAt(const BankState &bank, const Txn &txn) const;

    /** Issue helpers; @p now is the command-bus slot. */
    void issueAct(Txn &txn, BankState &bank, Tick now);
    void issuePre(Txn &txn, BankState &bank, Tick now);
    void issueCas(size_t idx, BankState &bank, Tick now);

    /** FR-FCFS pick order over queue indices. */
    std::vector<size_t> pickOrder() const;

    EventQueue &eq_;
    TimingParams p_;
    unsigned id_;

    std::vector<BankState> banks_;
    std::deque<Txn> queue_;
    std::size_t peakQueued_ = 0;

    Tick cmdBusFreeAt_ = 0;
    Tick dataBusFreeAt_ = 0;
    Tick lastColIssueAt_ = 0;
    Tick lastReadEndAt_ = 0;  //!< read burst end (write turnaround)
    Tick lastWriteEndAt_ = 0; //!< write burst end (tWTR fence)
    std::deque<Tick> recentActs_; //!< last 4 ACT issue ticks (tFAW)
    Tick nextRefreshAt_;
    bool wakeScheduled_ = false;
    Tick wakeAt_ = 0;

    CmdObserver *cmdObs_ = nullptr;
    TimingInject inject_ = TimingInject::None;

    ActivityCounters activity_;

    stats::StatGroup sg_;
    stats::Counter dataRowHits_;
    stats::Counter dataRowMisses_;
    stats::Counter metaRowHits_;
    stats::Counter metaRowMisses_;
    stats::Counter reads_;
    stats::Counter writes_;
    stats::Counter refreshCount_;
    stats::Counter actCommands_;
    stats::Counter preCommands_;
    stats::Average serviceTicks_;
};

} // namespace bmc::dram

#endif // BMC_DRAM_COMMAND_CHANNEL_HH
