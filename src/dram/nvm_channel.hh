/**
 * @file
 * NVM (3DXPoint-class) channel timing model.
 *
 * Selected by TimingParams::nvm, this replaces the DRAM bank/row
 * machinery with what distinguishes persistent-memory DIMMs:
 *
 *  - asymmetric media latency: reads pay tNvmRead at a banked media
 *    array, writes commit at tNvmWrite;
 *  - posted writes: a write completes (from the requester's point of
 *    view) as soon as it is admitted to the bounded write-pending
 *    queue (WPQ); the media commit drains in the background;
 *  - WPQ back-pressure: once occupancy reaches the high watermark the
 *    scheduler forces drains ahead of reads, and a full WPQ blocks
 *    further write admission -- the mechanism behind the write-
 *    bandwidth cliff measured on Optane parts.
 *
 * There is no row buffer (the media is bit-addressable), so row-hit
 * rates report zero, and no refresh. The model emits no DRAM command
 * stream; the protocol checker observes nothing when attached.
 */

#ifndef BMC_DRAM_NVM_CHANNEL_HH
#define BMC_DRAM_NVM_CHANNEL_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/channel.hh"
#include "dram/channel_iface.hh"
#include "dram/request.hh"
#include "dram/timing_params.hh"

namespace bmc::dram
{

/** One NVM channel: banked media behind a shared data bus and a
 *  write-pending queue. */
class NvmChannel : public ChannelIface
{
  public:
    NvmChannel(EventQueue &eq, const TimingParams &params,
               unsigned channel_id, stats::StatGroup &parent);

    void enqueue(Request req) override;

    size_t queueDepth() const override
    {
        return readQ_.size() + readQLow_.size() + writeWait_.size();
    }

    size_t peakQueueDepth() const override { return peakQueued_; }

    const ActivityCounters &activity() const override
    {
        return activity_;
    }

    // Bit-addressable media: no row buffer to hit.
    double dataRowHitRate() const override { return 0.0; }
    double metaRowHitRate() const override { return 0.0; }
    std::uint64_t dataAccesses() const override
    {
        return reads_.value() + writes_.value();
    }
    std::uint64_t metaAccesses() const override { return 0; }
    std::uint64_t dataRowHits() const override { return 0; }
    std::uint64_t metaRowHits() const override { return 0; }

    double avgServiceTicks() const override
    {
        return serviceTicks_.mean();
    }

    unsigned numBanks() const override
    {
        return static_cast<unsigned>(banks_.size());
    }
    std::uint64_t bankBusyTicks(unsigned bank) const override
    {
        return banks_.at(bank).busyTicks;
    }

    /** Current write-pending-queue occupancy (admitted, undrained). */
    unsigned wpqOccupancy() const
    {
        return static_cast<unsigned>(wpq_.size()) + drainsActive_;
    }

  private:
    struct Bank
    {
        Tick freeAt = 0;
        std::uint64_t busyTicks = 0;
    };

    unsigned bankOf(const Request &req) const;
    void issueRead(Request req);
    void admitWrite(Request req);
    void issueDrain();
    void trySchedule();

    EventQueue &eq_;
    TimingParams p_;
    unsigned id_;

    std::vector<Bank> banks_;
    std::deque<Request> readQ_;    //!< demand reads, FIFO
    std::deque<Request> readQLow_; //!< background reads, FIFO
    std::deque<Request> writeWait_; //!< writes awaiting WPQ admission
    std::deque<unsigned> wpq_;      //!< admitted writes (target bank)
    std::size_t peakQueued_ = 0;

    Tick busFreeAt_ = 0;
    unsigned inFlight_ = 0;      //!< outstanding read/admit events
    unsigned drainsActive_ = 0;  //!< media commits in flight
    unsigned lookahead_ = 8;

    ActivityCounters activity_;

    stats::StatGroup sg_;
    stats::Counter reads_;
    stats::Counter writes_;
    stats::Counter drains_;
    stats::Counter forcedDrains_; //!< drains issued above watermark
    stats::Counter wpqFullStalls_; //!< write admissions blocked
    stats::Average serviceTicks_;
    stats::Average wpqDepth_; //!< occupancy sampled at each admit
};

} // namespace bmc::dram

#endif // BMC_DRAM_NVM_CHANNEL_HH
