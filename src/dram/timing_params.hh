/**
 * @file
 * DRAM device/interface timing parameters.
 *
 * Parameters are specified in DRAM command-clock cycles (nCK) plus a
 * CPU-cycles-per-DRAM-cycle ratio; toTicks() converts to the global
 * 3.2 GHz tick domain used by the simulator. Two presets reproduce
 * Table IV of the paper:
 *
 *  - stacked():   die-stacked DRAM cache interface. 1.6 GHz, 128-bit
 *                 bus, CL-nRCD-nRP = 9-9-9, 2 KB pages.
 *  - ddr3_1600h(): off-chip DDR3-1600H main memory. 800 MHz command
 *                 clock, 64-bit bus, CL-nRCD-nRP = 9-9-9,
 *                 tREFI = 7.8 us, tRFC = 280 nCK.
 */

#ifndef BMC_DRAM_TIMING_PARAMS_HH
#define BMC_DRAM_TIMING_PARAMS_HH

#include <cstdint>

#include "common/types.hh"

namespace bmc::dram
{

/** Raw per-device timing and geometry description. */
struct TimingParams
{
    // Geometry
    unsigned numChannels = 2;     //!< independent channels
    unsigned banksPerChannel = 8; //!< banks in each channel
    std::uint32_t pageBytes = 2048; //!< row (page) size per bank

    // Interface
    unsigned cpuPerDramCycle = 2;   //!< CPU ticks per DRAM clock
    std::uint32_t busBytesPerCycle = 32; //!< data moved per DRAM cycle
                                         //!< (double data rate folded in)

    // Core timing, in DRAM clock cycles (nCK)
    unsigned tCL = 9;   //!< column access (CAS) latency
    unsigned tRCD = 9;  //!< ACT-to-column delay
    unsigned tRP = 9;   //!< precharge latency
    unsigned tRAS = 24; //!< min ACT-to-PRE interval
    unsigned tWR = 12;  //!< write recovery before PRE
    unsigned tCCD = 4;  //!< column-to-column delay
    unsigned tRRD = 5;  //!< ACT-to-ACT (different banks)
    unsigned tFAW = 24; //!< four-ACT window (command model)
    unsigned tWTR = 6;  //!< write-to-read turnaround (command model)
    unsigned tRTP = 6;  //!< read-to-precharge (command model)
    unsigned tCWL = 7;  //!< write CAS latency (command model)

    /** Select the command-granularity channel model
     *  (command_channel.hh) instead of the reservation model. */
    bool commandLevel = false;

    // Refresh
    std::uint64_t tREFI = 6240; //!< mean refresh interval (nCK)
    unsigned tRFC = 280;        //!< refresh cycle time (nCK)
    bool refreshEnabled = true;

    // Non-volatile backend (nvm_channel.hh). When set, the channel
    // model is NvmChannel regardless of commandLevel: banked media
    // with asymmetric read/write latency and a write-pending queue
    // absorbing posted writes.
    bool nvm = false;
    unsigned tNvmRead = 120;  //!< media read latency (nCK)
    unsigned tNvmWrite = 400; //!< media write (commit) latency (nCK)
    unsigned nvmWpqEntries = 16;       //!< write-pending queue depth
    unsigned nvmWpqHighWatermark = 12; //!< forced-drain threshold

    /** Convert a duration in DRAM cycles to CPU ticks. */
    Tick toTicks(std::uint64_t dram_cycles) const
    {
        return dram_cycles * cpuPerDramCycle;
    }

    /** Ticks needed to move @p bytes over the data bus. */
    Tick transferTicks(std::uint32_t bytes) const;

    /** Die-stacked DRAM-cache interface preset (Table IV). */
    static TimingParams stacked(unsigned channels, unsigned banks);

    /** Off-chip DDR3-1600H preset (Table IV). */
    static TimingParams ddr3_1600h(unsigned channels, unsigned banks);

    /** 3DXPoint-class NVM slow tier on a DDR-style bus: ~150 ns
     *  reads, ~500 ns posted writes behind a write-pending queue. */
    static TimingParams xpoint(unsigned channels, unsigned banks);
};

} // namespace bmc::dram

#endif // BMC_DRAM_TIMING_PARAMS_HH
