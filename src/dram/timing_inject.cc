#include "dram/timing_inject.hh"

#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace bmc::dram
{

TimingInject
timingInjectFromEnv()
{
    const char *val = std::getenv("BMC_CHECK_INJECT");
    if (!val || !*val)
        return TimingInject::None;
    if (!std::strcmp(val, "tfaw"))
        return TimingInject::Tfaw;
    if (!std::strcmp(val, "trcd"))
        return TimingInject::Trcd;
    if (!std::strcmp(val, "trp"))
        return TimingInject::Trp;
    if (!std::strcmp(val, "refresh"))
        return TimingInject::Refresh;
    bmc_fatal("BMC_CHECK_INJECT: unknown injection '%s'", val);
    return TimingInject::None;
}

} // namespace bmc::dram
