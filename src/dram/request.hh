/**
 * @file
 * The unit of work queued at a DRAM channel.
 */

#ifndef BMC_DRAM_REQUEST_HH
#define BMC_DRAM_REQUEST_HH

#include <cstdint>
#include <functional>

#include "common/types.hh"

namespace bmc::dram
{

/** Physical location of data inside one DRAM stack / DIMM. */
struct Location
{
    unsigned channel = 0;
    unsigned bank = 0;
    std::uint64_t row = 0;
};

/** What the channel should do for a request. */
enum class ReqKind : std::uint8_t
{
    Read,         //!< open row if needed, column read, bus transfer
    Write,        //!< open row if needed, column write, bus transfer
    ActivateOnly, //!< open the row speculatively; no bus transfer
};

/**
 * One DRAM transaction.
 *
 * @c onComplete fires with the tick at which the last data beat (or
 * the ACT completion for ActivateOnly) finishes. @c isMetadata tags
 * requests that belong to a cache-metadata structure so that
 * row-buffer statistics can be split between metadata and data
 * traffic (Fig 9b of the paper).
 */
struct Request
{
    Location loc;
    ReqKind kind = ReqKind::Read;
    std::uint32_t bytes = 64;
    bool isMetadata = false;
    /** Demand-critical requests win arbitration over background
     *  traffic (fill remainders, writebacks, tag prefetches). */
    bool lowPriority = false;
    CoreId core = 0;
    Tick enqueueTick = 0;
    /** Nonzero for requests on a sampled lifecycle-trace track;
     *  channels tag their queue/burst spans with this id. */
    std::uint32_t traceId = 0;
    std::function<void(Tick)> onComplete;
};

} // namespace bmc::dram

#endif // BMC_DRAM_REQUEST_HH
