/**
 * @file
 * Command-stream observer interface for the DRAM timing models.
 *
 * Both channel implementations can report every DRAM command they
 * decide on (ACT/PRE/RD/WR/REF) to an attached CmdObserver. The hook
 * is a single pointer test per command when detached, so it follows
 * the same zero-overhead-when-off discipline as the tracer; when
 * attached it feeds the protocol checker (src/check), which
 * independently re-derives DDR timing legality from the raw stream.
 *
 * Semantics differ per model and the observer must know which it is
 * attached to:
 *
 *  - Channel (reservation model) emits commands at reservation time
 *    with their computed issue ticks. The stream is monotonic per
 *    bank but may go backwards across banks.
 *  - CommandChannel emits commands in true issue order, one per DRAM
 *    clock on the shared command bus.
 *
 * REF events in both models are lazy: they carry the *nominal*
 * refresh tick (a multiple of tREFI), which may lie arbitrarily far
 * before the command that triggered the catch-up. Checkers must not
 * apply bus-ordering rules to REF.
 */

#ifndef BMC_DRAM_CMD_OBSERVER_HH
#define BMC_DRAM_CMD_OBSERVER_HH

#include <cstdint>

#include "common/types.hh"

namespace bmc::dram
{

enum class CmdKind : std::uint8_t
{
    Act,
    Pre,
    Rd,
    Wr,
    Ref,
};

inline const char *
cmdKindName(CmdKind kind)
{
    switch (kind) {
      case CmdKind::Act: return "ACT";
      case CmdKind::Pre: return "PRE";
      case CmdKind::Rd: return "RD";
      case CmdKind::Wr: return "WR";
      case CmdKind::Ref: return "REF";
    }
    return "?";
}

/** One observed DRAM command. */
struct CmdEvent
{
    CmdKind kind = CmdKind::Act;
    unsigned channel = 0;
    unsigned bank = 0;      //!< undefined for Ref (all banks)
    std::uint64_t row = 0;  //!< ACT/PRE/RD/WR: the addressed row
    Tick at = 0;            //!< command issue tick (nominal for Ref)
    Tick dataStart = 0;     //!< RD/WR: first data-bus tick
    Tick dataEnd = 0;       //!< RD/WR: one past the last bus tick
    std::uint32_t bytes = 0; //!< RD/WR: burst length in bytes
};

/** Receives every command a channel issues (or reserves). */
class CmdObserver
{
  public:
    virtual ~CmdObserver() = default;
    virtual void onCommand(const CmdEvent &ev) = 0;
};

} // namespace bmc::dram

#endif // BMC_DRAM_CMD_OBSERVER_HH
