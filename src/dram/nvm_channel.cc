#include "dram/nvm_channel.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace bmc::dram
{

NvmChannel::NvmChannel(EventQueue &eq, const TimingParams &params,
                       unsigned channel_id, stats::StatGroup &parent)
    : eq_(eq), p_(params), id_(channel_id),
      banks_(params.banksPerChannel),
      sg_("channel" + std::to_string(channel_id), &parent),
      reads_(sg_, "reads", "media reads serviced"),
      writes_(sg_, "writes", "writes admitted to the WPQ"),
      drains_(sg_, "drains", "WPQ entries committed to media"),
      forcedDrains_(sg_, "forced_drains",
                    "drains forced by the WPQ high watermark"),
      wpqFullStalls_(sg_, "wpq_full_stalls",
                     "write admissions blocked on a full WPQ"),
      serviceTicks_(sg_, "service_ticks",
                    "ticks from enqueue to completion"),
      wpqDepth_(sg_, "wpq_depth", "WPQ occupancy at each admission")
{
    bmc_assert(params.banksPerChannel > 0, "channel needs banks");
    bmc_assert(params.nvmWpqEntries > 0, "WPQ needs entries");
    bmc_assert(params.nvmWpqHighWatermark <= params.nvmWpqEntries,
               "WPQ watermark above capacity");
}

unsigned
NvmChannel::bankOf(const Request &req) const
{
    return req.loc.bank % static_cast<unsigned>(banks_.size());
}

void
NvmChannel::enqueue(Request req)
{
    req.enqueueTick = eq_.now();
    if (req.kind == ReqKind::ActivateOnly) {
        // No row buffer to open: speculative activates are free.
        if (req.onComplete) {
            auto cb = std::move(req.onComplete);
            eq_.scheduleAt(eq_.now(),
                           [this, cb = std::move(cb)] {
                               cb(eq_.now());
                           });
        }
        return;
    }
    if (req.kind == ReqKind::Write) {
        writeWait_.push_back(std::move(req));
    } else if (req.lowPriority) {
        readQLow_.push_back(std::move(req));
    } else {
        readQ_.push_back(std::move(req));
    }
    if (queueDepth() > peakQueued_)
        peakQueued_ = queueDepth();
    trySchedule();
}

void
NvmChannel::issueRead(Request req)
{
    Bank &bank = banks_[bankOf(req)];
    const Tick start = std::max(eq_.now(), bank.freeAt);
    const Tick media_done = start + p_.toTicks(p_.tNvmRead);
    const Tick bus_start = std::max(media_done, busFreeAt_);
    const Tick bus_done = bus_start + p_.transferTicks(req.bytes);
    bank.busyTicks += media_done - start;
    bank.freeAt = media_done;
    busFreeAt_ = bus_done;

    ++reads_;
    ++activity_.columnReads;
    activity_.bytesRead += req.bytes;
    serviceTicks_.sample(
        static_cast<double>(bus_done - req.enqueueTick));

    ++inFlight_;
    auto cb = std::move(req.onComplete);
    auto done = [this, cb = std::move(cb)] {
        --inFlight_;
        if (cb)
            cb(eq_.now());
        trySchedule();
    };
    static_assert(
        EventQueue::Callback::fitsInline<decltype(done)>(),
        "NVM read completion closure must stay within the pooled "
        "node's inline budget -- this fires once per read");
    eq_.scheduleAt(bus_done, std::move(done));
}

void
NvmChannel::admitWrite(Request req)
{
    // A posted write completes at WPQ admission: the data crosses the
    // bus into the buffer and the requester moves on; the media
    // commit drains in the background.
    const Tick bus_start = std::max(eq_.now(), busFreeAt_);
    const Tick bus_done = bus_start + p_.transferTicks(req.bytes);
    busFreeAt_ = bus_done;

    ++writes_;
    ++activity_.columnWrites;
    activity_.bytesWritten += req.bytes;
    wpqDepth_.sample(static_cast<double>(wpqOccupancy()));
    serviceTicks_.sample(
        static_cast<double>(bus_done - req.enqueueTick));
    wpq_.push_back(bankOf(req));

    ++inFlight_;
    auto cb = std::move(req.onComplete);
    auto done = [this, cb = std::move(cb)] {
        --inFlight_;
        if (cb)
            cb(eq_.now());
        trySchedule();
    };
    static_assert(
        EventQueue::Callback::fitsInline<decltype(done)>(),
        "WPQ admission closure must stay within the pooled node's "
        "inline budget -- this fires once per write");
    eq_.scheduleAt(bus_done, std::move(done));
}

void
NvmChannel::issueDrain()
{
    const unsigned bank_id = wpq_.front();
    wpq_.pop_front();
    Bank &bank = banks_[bank_id];
    const Tick start = std::max(eq_.now(), bank.freeAt);
    const Tick done_at = start + p_.toTicks(p_.tNvmWrite);
    bank.busyTicks += done_at - start;
    bank.freeAt = done_at;

    ++drains_;
    ++drainsActive_;
    eq_.scheduleAt(done_at, [this] {
        --drainsActive_;
        trySchedule();
    });
}

void
NvmChannel::trySchedule()
{
    // Priority order per issue slot: forced drains above the
    // watermark, then demand reads, then write admission, then
    // background reads, then opportunistic drains on an otherwise
    // idle channel.
    for (;;) {
        if (wpqOccupancy() >= p_.nvmWpqHighWatermark &&
            !wpq_.empty() &&
            drainsActive_ < banks_.size()) {
            ++forcedDrains_;
            issueDrain();
            continue;
        }
        if (inFlight_ >= lookahead_)
            return;
        if (!readQ_.empty()) {
            Request req = std::move(readQ_.front());
            readQ_.pop_front();
            issueRead(std::move(req));
            continue;
        }
        if (!writeWait_.empty()) {
            if (wpqOccupancy() >= p_.nvmWpqEntries) {
                ++wpqFullStalls_;
                // Blocked until a drain completes; force one if none
                // is already on its way.
                if (!wpq_.empty() &&
                    drainsActive_ < banks_.size()) {
                    issueDrain();
                    continue;
                }
                return;
            }
            Request req = std::move(writeWait_.front());
            writeWait_.pop_front();
            admitWrite(std::move(req));
            continue;
        }
        if (!readQLow_.empty()) {
            Request req = std::move(readQLow_.front());
            readQLow_.pop_front();
            issueRead(std::move(req));
            continue;
        }
        if (!wpq_.empty() && drainsActive_ < banks_.size()) {
            issueDrain();
            continue;
        }
        return;
    }
}

} // namespace bmc::dram
