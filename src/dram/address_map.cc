#include "dram/address_map.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace bmc::dram
{

AddressMap::AddressMap(std::uint32_t page_bytes, unsigned channels,
                       unsigned banks)
    : pageBytes_(page_bytes), channels_(channels), banks_(banks)
{
    bmc_assert(isPowerOf2(page_bytes), "page size must be pow2");
    bmc_assert(channels > 0 && banks > 0, "need channels and banks");
}

Location
AddressMap::locate(Addr addr) const
{
    const Addr page = addr / pageBytes_;
    Location loc;
    loc.channel = static_cast<unsigned>(page % channels_);
    loc.bank = static_cast<unsigned>((page / channels_) % banks_);
    loc.row = page / (static_cast<Addr>(channels_) * banks_);
    return loc;
}

std::uint32_t
AddressMap::pageOffset(Addr addr) const
{
    return static_cast<std::uint32_t>(addr % pageBytes_);
}

Addr
AddressMap::addressOf(const Location &loc,
                      std::uint32_t page_offset) const
{
    bmc_assert(loc.channel < channels_ && loc.bank < banks_,
               "location (%u, %u) outside %u channels x %u banks",
               loc.channel, loc.bank, channels_, banks_);
    bmc_assert(page_offset < pageBytes_, "offset %u beyond page",
               page_offset);
    const Addr page =
        (loc.row * banks_ + loc.bank) * channels_ + loc.channel;
    return page * pageBytes_ + page_offset;
}

} // namespace bmc::dram
