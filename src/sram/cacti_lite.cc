#include "sram/cacti_lite.hh"

#include <cmath>

#include "common/types.hh"

namespace bmc::sram
{

unsigned
CactiLite::latencyCycles(std::uint64_t size_bytes)
{
    // Calibration points from the paper (22 nm CACTI).
    if (size_bytes <= 128 * kKiB)
        return 1;
    if (size_bytes <= 512 * kKiB)
        return 2;
    if (size_bytes <= 768 * kKiB)
        return 4;
    if (size_bytes <= 1 * kMiB)
        return 6;
    if (size_bytes <= 2 * kMiB)
        return 7;
    if (size_bytes <= 4 * kMiB)
        return 9;
    // Extrapolate: +2 cycles per doubling past 4 MB.
    unsigned lat = 9;
    std::uint64_t cap = 4 * kMiB;
    while (cap < size_bytes) {
        cap *= 2;
        lat += 2;
    }
    return lat;
}

double
CactiLite::accessEnergyPj(std::uint64_t size_bytes)
{
    // Wire-dominated sqrt(capacity) scaling, anchored at ~10 pJ for a
    // 64 KB macro at 22 nm (typical CACTI output for a tag array).
    const double anchor_bytes = 64.0 * static_cast<double>(kKiB);
    const double anchor_pj = 10.0;
    return anchor_pj *
           std::sqrt(static_cast<double>(size_bytes) / anchor_bytes);
}

SramEstimate
CactiLite::estimate(std::uint64_t size_bytes)
{
    return {size_bytes, latencyCycles(size_bytes),
            accessEnergyPj(size_bytes)};
}

} // namespace bmc::sram
