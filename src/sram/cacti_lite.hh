/**
 * @file
 * CactiLite: analytical SRAM access-latency / energy model.
 *
 * The paper sizes its SRAM structures (Way Locator, tag stores, tag
 * caches, predictors) with CACTI at 22 nm and quotes the following
 * calibration points, which this model reproduces exactly and
 * interpolates between (Table III and Section III-C):
 *
 *   <= 128 KB  -> 1 cycle          1 MB -> 6 cycles
 *   <= 512 KB  -> 2 cycles         2 MB -> 7 cycles
 *                                  4 MB -> 9 cycles
 *
 * Beyond 4 MB the model extrapolates at +2 cycles per doubling, the
 * trend of the quoted points. Access energy scales with sqrt(size),
 * the usual CACTI wire-dominated regime.
 */

#ifndef BMC_SRAM_CACTI_LITE_HH
#define BMC_SRAM_CACTI_LITE_HH

#include <cstdint>

namespace bmc::sram
{

/** Latency and energy estimates for one SRAM macro. */
struct SramEstimate
{
    std::uint64_t sizeBytes;   //!< capacity used for the estimate
    unsigned latencyCycles;    //!< access latency, 3.2 GHz CPU cycles
    double accessEnergyPj;     //!< dynamic energy per access (pJ)
};

/** Analytical SRAM model calibrated to the paper's CACTI points. */
class CactiLite
{
  public:
    /** Estimate latency/energy for an SRAM of @p size_bytes. */
    static SramEstimate estimate(std::uint64_t size_bytes);

    /** Just the access latency in cycles. */
    static unsigned latencyCycles(std::uint64_t size_bytes);

    /** Just the per-access dynamic energy in pJ. */
    static double accessEnergyPj(std::uint64_t size_bytes);
};

} // namespace bmc::sram

#endif // BMC_SRAM_CACTI_LITE_HH
