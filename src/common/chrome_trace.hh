/**
 * @file
 * Streaming Chrome trace-event writer for per-request lifecycle
 * tracing.
 *
 * Emits the JSON object form of the Trace Event Format
 * ({"traceEvents": [...], ...}), loadable in Perfetto and
 * chrome://tracing. Components hold a raw ChromeTracer pointer that
 * is null when tracing is disabled, so the entire instrumentation
 * cost in a production run is one pointer test per hook point.
 *
 * Requests are sampled 1-in-K at the point where they enter the
 * memory system: maybeStartRequest() returns a nonzero track id for
 * sampled requests and 0 otherwise, and the id rides along the
 * request (dram::Request::traceId, controller callbacks) so every
 * layer tags its events onto the same track. Simulated ticks are
 * written as microsecond timestamps 1:1; a 2 GHz core tick therefore
 * displays as half a nanosecond of wall time -- relative distances
 * are what matter.
 *
 * The file is finalized (footer + flush) by the destructor, so a
 * SimError unwinding through the owning System still leaves a
 * well-formed trace behind.
 */

#ifndef BMC_COMMON_CHROME_TRACE_HH
#define BMC_COMMON_CHROME_TRACE_HH

#include <cstdint>
#include <fstream>
#include <string>

#include "common/types.hh"

namespace bmc
{

/** Streaming Chrome trace-event JSON writer. */
class ChromeTracer
{
  public:
    /**
     * Open @p path for writing (bmc_fatal on failure -- under
     * ScopedThrowErrors this throws SimError so a bad path in one
     * sweep run does not kill the sweep). @p sample_period K traces
     * every K-th request (1 = every request).
     */
    ChromeTracer(const std::string &path,
                 std::uint32_t sample_period);

    /** Write the footer and close the stream. */
    ~ChromeTracer();

    ChromeTracer(const ChromeTracer &) = delete;
    ChromeTracer &operator=(const ChromeTracer &) = delete;

    /**
     * Sampling decision for a new request entering the memory
     * system: returns a fresh nonzero track id for every K-th call,
     * 0 otherwise.
     */
    std::uint32_t
    maybeStartRequest()
    {
        if (sampleCounter_++ % samplePeriod_ != 0)
            return 0;
        return ++nextTrackId_;
    }

    /**
     * Complete ("X") event: a span [start, end] on track (pid, tid).
     * @p args_json, when non-empty, must be a JSON object literal.
     */
    void completeEvent(const char *name, const char *cat,
                       std::uint32_t pid, std::uint64_t tid,
                       Tick start, Tick end,
                       const std::string &args_json = "");

    /** Instant ("i") event at @p ts on track (pid, tid). */
    void instantEvent(const char *name, const char *cat,
                      std::uint32_t pid, std::uint64_t tid, Tick ts,
                      const std::string &args_json = "");

    std::uint64_t eventsWritten() const { return eventsWritten_; }
    std::uint32_t tracksStarted() const { return nextTrackId_; }

    void flush() { out_.flush(); }

  private:
    void emitPrefix();

    std::ofstream out_;
    std::uint32_t samplePeriod_;
    std::uint64_t sampleCounter_ = 0;
    std::uint32_t nextTrackId_ = 0;
    std::uint64_t eventsWritten_ = 0;
    bool closed_ = false;
};

} // namespace bmc

#endif // BMC_COMMON_CHROME_TRACE_HH
