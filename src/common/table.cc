#include "common/table.hh"

#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace bmc
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &text)
{
    bmc_assert(!rows_.empty(), "cell() before row()");
    bmc_assert(rows_.back().size() < headers_.size(),
               "too many cells in row");
    rows_.back().push_back(text);
    return *this;
}

Table &
Table::cell(const char *text)
{
    return cell(std::string(text));
}

Table &
Table::cell(double v, int precision)
{
    return cell(strfmt("%.*f", precision, v));
}

Table &
Table::cell(std::uint64_t v)
{
    return cell(std::to_string(v));
}

Table &
Table::cell(int v)
{
    return cell(std::to_string(v));
}

Table &
Table::pct(double v, int precision)
{
    return cell(strfmt("%.*f%%", precision, v));
}

std::string
Table::str() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row,
                        std::ostringstream &os) {
        for (size_t c = 0; c < headers_.size(); ++c) {
            const std::string &text = c < row.size() ? row[c] : "";
            os << text;
            if (c + 1 < headers_.size())
                os << std::string(widths[c] - text.size() + 2, ' ');
        }
        os << "\n";
    };

    std::ostringstream os;
    emit_row(headers_, os);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row, os);
    return os.str();
}

void
Table::print() const
{
    std::fputs(str().c_str(), stdout);
}

} // namespace bmc
