#include "common/logging.hh"

#include <cstdarg>
#include <cstdio>

namespace bmc
{

std::string
strfmt(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out(len > 0 ? static_cast<size_t>(len) : 0, '\0');
    if (len > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    va_end(args_copy);
    return out;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace bmc
