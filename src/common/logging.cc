#include "common/logging.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>

namespace bmc
{

namespace
{

std::atomic<int> throwDepth{0};

} // anonymous namespace

ScopedThrowErrors::ScopedThrowErrors()
{
    throwDepth.fetch_add(1, std::memory_order_relaxed);
}

ScopedThrowErrors::~ScopedThrowErrors()
{
    throwDepth.fetch_sub(1, std::memory_order_relaxed);
}

std::string
strfmt(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out(len > 0 ? static_cast<size_t>(len) : 0, '\0');
    if (len > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    va_end(args_copy);
    return out;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    if (throwDepth.load(std::memory_order_relaxed) > 0)
        throw SimError(strfmt("panic: %s (%s:%d)", msg.c_str(), file,
                              line));
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    if (throwDepth.load(std::memory_order_relaxed) > 0)
        throw SimError(strfmt("fatal: %s (%s:%d)", msg.c_str(), file,
                              line));
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace bmc
