/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives one simulated system. Components
 * schedule closures at absolute ticks; the queue executes them in
 * (tick, insertion-order) order, so same-tick events are
 * deterministic. There is no global singleton: every System owns its
 * queue, which keeps independent experiment runs isolated and
 * trivially parallelizable by the caller.
 *
 * The kernel is allocation-free in steady state: events live in
 * pooled nodes recycled through a free list (the pool grows to the
 * peak number of outstanding events and never shrinks), and
 * callbacks are InplaceFunction (captures up to 48 B stored inline,
 * moved -- never copied -- through the kernel).
 *
 * Ordering is a calendar queue tuned for the simulator's near-
 * future-dense event mix: a timing wheel of kWheelSlots one-tick
 * slots covers the window [now, now + kWheelSlots). In-window events
 * append O(1) to an intrusive per-slot FIFO (insertion order IS
 * (tick, seq) order within a slot); a two-level bitmap (a summary
 * level over the slot-occupancy words) finds the next non-empty slot
 * in a few word scans, and run() batch-drains a whole slot without
 * re-searching, which removes the per-event re-heapify traffic of
 * the previous 4-ary heap on same-tick bursts. Far-future events
 * (refresh timers, long core sleeps) fall back to the retained
 * 4-ary heap keyed by (tick, seq); execution min-merges the two
 * structures, and a tie at the same tick goes to the heap, which is
 * exactly insertion order: a heap resident at tick T was scheduled
 * while T was still outside the window, i.e. strictly before any
 * event the wheel holds for T. A pure far-future workload therefore
 * runs at the old heap kernel's speed -- the wheel only ever adds
 * cost it repays. cancel() stays O(1) for wheel events (list
 * unlink) and O(log n) for heap events (position-tracked sift).
 */

#ifndef BMC_COMMON_EVENT_QUEUE_HH
#define BMC_COMMON_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/inline_function.hh"
#include "common/types.hh"

namespace bmc
{

/** Calendar-queue event kernel with a monotonic current tick. */
class EventQueue
{
  public:
    using Callback = InplaceFunction<void(), 48>;

    /**
     * Handle for a scheduled event, usable with cancel(). Stays
     * valid (and simply fails to cancel) after the event executed:
     * the id embeds a generation count that node reuse invalidates.
     * 0 is never a valid id.
     */
    using EventId = std::uint64_t;

    EventQueue();
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of events executed so far. */
    std::uint64_t numExecuted() const { return numExecuted_; }

    /** True when no events are pending. */
    bool empty() const { return wheelCount_ == 0 && heap_.empty(); }

    /** Number of pending (scheduled, not yet executed) events. */
    std::size_t numPending() const
    {
        return wheelCount_ + heap_.size();
    }

    /**
     * Schedule a callable at absolute tick @p when (>= now). The
     * callable is constructed directly in pooled node storage, so
     * its captures move exactly once on the way in.
     *
     * The capture list must fit the pooled node's inline budget:
     * outgrowing it is a compile error rather than a silent per-event
     * heap allocation. Cold paths that genuinely need a large capture
     * say so explicitly with scheduleAtBoxed().
     */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, Callback> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventId
    scheduleAt(Tick when, F &&f)
    {
        static_assert(
            Callback::template fitsInline<std::decay_t<F>>(),
            "event callback capture exceeds the inline pool-node "
            "budget (EventQueue::Callback capacity); shrink the "
            "capture or use scheduleAtBoxed() on a cold path");
        Node *node = allocNode();
        node->cb.emplace(std::forward<F>(f));
        return enqueue(when, node);
    }

    /**
     * Schedule a callable whose captures exceed the inline budget.
     * The callable is moved into one explicit heap box; the pooled
     * node stores only the owning pointer. One allocation per event
     * -- acceptable on miss-path continuations that already allocate
     * (DRAM requests, MSHR entries), never on the hot tick loop.
     */
    template <typename F,
              typename = std::enable_if_t<
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventId
    scheduleAtBoxed(Tick when, F &&f)
    {
        auto box =
            std::make_unique<std::decay_t<F>>(std::forward<F>(f));
        return scheduleAt(when,
                          [box = std::move(box)]() mutable { (*box)(); });
    }

    /** Overload for an already-built Callback (moved, never copied). */
    EventId scheduleAt(Tick when, Callback cb);

    /** Schedule a callable @p delay ticks from now. */
    template <typename F>
    EventId
    schedule(Tick delay, F &&f)
    {
        return scheduleAt(now_ + delay, std::forward<F>(f));
    }

    /**
     * Remove a pending event before it fires. @return true if the
     * event was pending (it will not execute); false if it already
     * executed, was already cancelled, or @p id is stale.
     */
    bool cancel(EventId id);

    /**
     * Run until the queue drains or @p until is reached. Events that
     * share a tick are drained as one batch from their wheel slot.
     * @return the tick of the last executed event.
     */
    Tick run(Tick until = maxTick);

    /** Execute at most one event. @return false if queue was empty. */
    bool step();

    // -------- pool introspection (tests and the perf harness) -----

    /** Total event nodes ever created (pool high-water mark). */
    std::size_t poolAllocated() const { return poolAllocated_; }

    /** Nodes currently on the free list. */
    std::size_t poolFree() const { return freeNodes_.size(); }

    /** Events currently in the near-future wheel (tests). */
    std::size_t wheelPending() const { return wheelCount_; }

    /** Events currently in the far-future overflow heap (tests). */
    std::size_t heapPending() const { return heap_.size(); }

    // -------- self-profiling gauges (common/profiler.hh) ----------
    // Monotonic counts the kernel maintains anyway or can keep with
    // O(1) work per event; always on, exported only on request.

    /** Events executed via the far-future overflow heap. */
    std::uint64_t numExecutedHeap() const { return heapExecuted_; }

    /** Events executed via the near-future wheel (derived). */
    std::uint64_t numExecutedWheel() const
    {
        return numExecuted_ - heapExecuted_;
    }

    /** Peak simultaneous pending events (wheel + heap). */
    std::size_t peakPending() const { return peakPending_; }

    /** Same-tick slot batch drains performed by run(). */
    std::uint64_t batchDrains() const { return batchDrains_; }

    /** Largest single slot batch run() ever drained. */
    std::uint64_t maxBatchDrain() const { return maxBatch_; }

    /** One-tick slots the near-future wheel covers. */
    static constexpr std::uint64_t kWheelSlots = 16384;

  private:
    /** heapPos value marking a node that lives in the wheel. */
    static constexpr std::uint32_t kInWheel = 0xffffffffu;
    static constexpr std::uint32_t npos32 = 0xffffffffu;
    static constexpr std::uint64_t kWheelMask = kWheelSlots - 1;
    static constexpr std::uint64_t kWheelWords = kWheelSlots / 64;
    static constexpr std::uint64_t kSummaryWords = kWheelWords / 64;

    struct Node
    {
        Callback cb;
        Tick when = 0;             //!< absolute tick (wheel unlink)
        std::uint32_t index = 0;   //!< self index into the pool
        std::uint32_t gen = 0;     //!< bumped on free; stales ids
        /** Position inside heap_, or kInWheel for wheel residents. */
        std::uint32_t heapPos = 0;
        std::uint32_t prev = npos32; //!< wheel-slot FIFO links
        std::uint32_t next = npos32;
    };

    /** Heap entry: the (tick, seq) ordering key lives here, beside
     *  the node pointer, so sift comparisons stay in the heap array. */
    struct HeapEntry
    {
        Tick when;
        std::uint64_t seq;
        Node *node;
    };

    /** One wheel slot: an intrusive FIFO of same-tick nodes. */
    struct Slot
    {
        std::uint32_t head = npos32;
        std::uint32_t tail = npos32;
    };

    /** Nodes per pool chunk; chunks give stable node addresses. */
    static constexpr std::uint32_t kChunkSize = 256;

    /** Overflow-heap branching factor (see PR 2 rationale). */
    static constexpr std::size_t kArity = 4;

    static bool
    before(const HeapEntry &a, const HeapEntry &b)
    {
        return a.when != b.when ? a.when < b.when : a.seq < b.seq;
    }

    Node *allocNode();
    void freeNode(Node *node);
    Node *nodeAt(std::uint32_t index);

    /** Route an already-populated node to the wheel or the heap. */
    EventId enqueue(Tick when, Node *node);

    /** Append @p node to the slot for @p when (must be in-window). */
    void wheelInsert(Tick when, Node *node);
    /** Unlink @p node from its slot (cancel path). */
    void wheelRemove(Node *node);
    /** Detach and return the head node of @p slot. */
    Node *wheelPopHead(std::uint64_t slot);
    /** Index of the first non-empty slot in cyclic order from now_.
     *  Requires wheelCount_ > 0. */
    std::uint64_t wheelNextSlot() const;
    /** First non-empty slot word in cyclic order strictly after
     *  @p word (wrapping back to @p word itself last). */
    std::uint64_t wheelNextWord(std::uint64_t word) const;
    void wheelSetBit(std::uint64_t slot);
    void wheelClearBit(std::uint64_t slot);

    void heapPush(Tick when, Node *node);
    void siftUp(std::size_t pos);
    void siftDown(std::size_t pos);
    /** Detach the entry at heap position @p pos (no node free). */
    void removeFromHeap(std::size_t pos);

    /** Execute @p node's callback (gen already current). */
    void invoke(Node *node);

    std::vector<std::unique_ptr<Node[]>> chunks_;
    std::vector<std::uint32_t> freeNodes_;
    std::vector<HeapEntry> heap_;
    std::size_t poolAllocated_ = 0;

    std::vector<Slot> wheel_; //!< kWheelSlots entries
    /** Slot-occupancy bitmap plus a summary level (one summary bit
     *  per occupancy word), so the next-slot search touches at most
     *  a handful of words however sparse the wheel is. */
    std::uint64_t wheelWords_[kWheelWords] = {};
    std::uint64_t wheelSummary_[kSummaryWords] = {};
    std::size_t wheelCount_ = 0;

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t numExecuted_ = 0;
    std::uint64_t heapExecuted_ = 0;
    std::size_t peakPending_ = 0;
    std::uint64_t batchDrains_ = 0;
    std::uint64_t maxBatch_ = 0;
};

} // namespace bmc

#endif // BMC_COMMON_EVENT_QUEUE_HH
