/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives one simulated system. Components
 * schedule closures at absolute ticks; the queue executes them in
 * (tick, insertion-order) order, so same-tick events are
 * deterministic. There is no global singleton: every System owns its
 * queue, which keeps independent experiment runs isolated and
 * trivially parallelizable by the caller.
 *
 * The kernel is allocation-free in steady state: events live in
 * pooled nodes recycled through a free list (the pool grows to the
 * peak number of outstanding events and never shrinks), callbacks
 * are InplaceFunction (captures up to 48 B stored inline, moved --
 * never copied -- through the kernel), and ordering is a hand-rolled
 * 4-ary heap with position tracking so cancel() removes an event in
 * O(log n). Each heap entry carries its (tick, seq) ordering key
 * next to the node pointer, so sifting compares contiguous heap
 * memory instead of chasing node pointers.
 */

#ifndef BMC_COMMON_EVENT_QUEUE_HH
#define BMC_COMMON_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/inline_function.hh"
#include "common/types.hh"

namespace bmc
{

/** Min-heap driven event queue with a monotonic current tick. */
class EventQueue
{
  public:
    using Callback = InplaceFunction<void(), 48>;

    /**
     * Handle for a scheduled event, usable with cancel(). Stays
     * valid (and simply fails to cancel) after the event executed:
     * the id embeds a generation count that node reuse invalidates.
     * 0 is never a valid id.
     */
    using EventId = std::uint64_t;

    EventQueue() = default;
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of events executed so far. */
    std::uint64_t numExecuted() const { return numExecuted_; }

    /** True when no events are pending. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending (scheduled, not yet executed) events. */
    std::size_t numPending() const { return heap_.size(); }

    /**
     * Schedule a callable at absolute tick @p when (>= now). The
     * callable is constructed directly in pooled node storage, so
     * its captures move exactly once on the way in.
     *
     * The capture list must fit the pooled node's inline budget:
     * outgrowing it is a compile error rather than a silent per-event
     * heap allocation. Cold paths that genuinely need a large capture
     * say so explicitly with scheduleAtBoxed().
     */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, Callback> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventId
    scheduleAt(Tick when, F &&f)
    {
        static_assert(
            Callback::template fitsInline<std::decay_t<F>>(),
            "event callback capture exceeds the inline pool-node "
            "budget (EventQueue::Callback capacity); shrink the "
            "capture or use scheduleAtBoxed() on a cold path");
        Node *node = allocNode();
        node->cb.emplace(std::forward<F>(f));
        return enqueue(when, node);
    }

    /**
     * Schedule a callable whose captures exceed the inline budget.
     * The callable is moved into one explicit heap box; the pooled
     * node stores only the owning pointer. One allocation per event
     * -- acceptable on miss-path continuations that already allocate
     * (DRAM requests, MSHR entries), never on the hot tick loop.
     */
    template <typename F,
              typename = std::enable_if_t<
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventId
    scheduleAtBoxed(Tick when, F &&f)
    {
        auto box =
            std::make_unique<std::decay_t<F>>(std::forward<F>(f));
        return scheduleAt(when,
                          [box = std::move(box)]() mutable { (*box)(); });
    }

    /** Overload for an already-built Callback (moved, never copied). */
    EventId scheduleAt(Tick when, Callback cb);

    /** Schedule a callable @p delay ticks from now. */
    template <typename F>
    EventId
    schedule(Tick delay, F &&f)
    {
        return scheduleAt(now_ + delay, std::forward<F>(f));
    }

    /**
     * Remove a pending event before it fires. @return true if the
     * event was pending (it will not execute); false if it already
     * executed, was already cancelled, or @p id is stale.
     */
    bool cancel(EventId id);

    /**
     * Run until the queue drains or @p until is reached.
     * @return the tick of the last executed event.
     */
    Tick run(Tick until = maxTick);

    /** Execute at most one event. @return false if queue was empty. */
    bool step();

    // -------- pool introspection (tests and the perf harness) -----

    /** Total event nodes ever created (pool high-water mark). */
    std::size_t poolAllocated() const { return poolAllocated_; }

    /** Nodes currently on the free list. */
    std::size_t poolFree() const { return freeNodes_.size(); }

  private:
    struct Node
    {
        Callback cb;
        std::uint32_t index = 0;   //!< self index into the pool
        std::uint32_t gen = 0;     //!< bumped on free; stales ids
        std::uint32_t heapPos = 0; //!< position inside heap_
    };

    /** Heap entry: the (tick, seq) ordering key lives here, beside
     *  the node pointer, so sift comparisons stay in the heap array. */
    struct HeapEntry
    {
        Tick when;
        std::uint64_t seq;
        Node *node;
    };

    /** Nodes per pool chunk; chunks give stable node addresses. */
    static constexpr std::uint32_t kChunkSize = 256;

    /** Heap branching factor. A 4-ary heap halves the sift depth of
     *  a binary one and the four 24 B children sit in at most two
     *  cache lines, which wins on the pop-heavy simulation pattern. */
    static constexpr std::size_t kArity = 4;

    static bool
    before(const HeapEntry &a, const HeapEntry &b)
    {
        return a.when != b.when ? a.when < b.when : a.seq < b.seq;
    }

    Node *allocNode();
    void freeNode(Node *node);
    Node *nodeAt(std::uint32_t index);

    /** Push an already-populated node onto the heap. */
    EventId enqueue(Tick when, Node *node);

    void siftUp(std::size_t pos);
    void siftDown(std::size_t pos);
    /** Detach the entry at heap position @p pos (no node free). */
    void removeFromHeap(std::size_t pos);

    std::vector<std::unique_ptr<Node[]>> chunks_;
    std::vector<std::uint32_t> freeNodes_;
    std::vector<HeapEntry> heap_;
    std::size_t poolAllocated_ = 0;

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t numExecuted_ = 0;
};

} // namespace bmc

#endif // BMC_COMMON_EVENT_QUEUE_HH
