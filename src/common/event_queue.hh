/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives one simulated system. Components
 * schedule closures at absolute ticks; the queue executes them in
 * (tick, insertion-order) order, so same-tick events are
 * deterministic. There is no global singleton: every System owns its
 * queue, which keeps independent experiment runs isolated and
 * trivially parallelizable by the caller.
 */

#ifndef BMC_COMMON_EVENT_QUEUE_HH
#define BMC_COMMON_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace bmc
{

/** Min-heap driven event queue with a monotonic current tick. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of events executed so far. */
    std::uint64_t numExecuted() const { return numExecuted_; }

    /** True when no events are pending. */
    bool empty() const { return heap_.empty(); }

    /** Schedule @p cb at absolute tick @p when (>= now). */
    void scheduleAt(Tick when, Callback cb);

    /** Schedule @p cb @p delay ticks from now. */
    void schedule(Tick delay, Callback cb)
    {
        scheduleAt(now_ + delay, std::move(cb));
    }

    /**
     * Run until the queue drains or @p until is reached.
     * @return the tick of the last executed event.
     */
    Tick run(Tick until = maxTick);

    /** Execute at most one event. @return false if queue was empty. */
    bool step();

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            return a.when != b.when ? a.when > b.when : a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t numExecuted_ = 0;
};

} // namespace bmc

#endif // BMC_COMMON_EVENT_QUEUE_HH
