/**
 * @file
 * Fixed-size worker pool for batch simulation drivers.
 *
 * The simulator itself is single-threaded by design (one EventQueue
 * per System); parallelism lives entirely at the experiment layer,
 * where independent runs of a sweep matrix are distributed over a
 * pool of workers. Jobs must therefore be mutually independent --
 * the pool provides no ordering guarantees beyond wait() observing
 * the completion of everything submitted before it.
 */

#ifndef BMC_COMMON_THREAD_POOL_HH
#define BMC_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bmc
{

/** Fixed set of workers draining a FIFO job queue. */
class ThreadPool
{
  public:
    using Job = std::function<void()>;

    /** @param num_threads worker count; 0 means defaultThreads(). */
    explicit ThreadPool(unsigned num_threads);

    /** Waits for queued jobs, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one job. Jobs must not throw (wrap exceptions). */
    void submit(Job job);

    /** Block until every job submitted so far has finished. */
    void wait();

    unsigned numThreads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Hardware concurrency, with a floor of 1. */
    static unsigned defaultThreads();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<Job> queue_;
    std::mutex mutex_;
    std::condition_variable wakeWorker_;
    std::condition_variable allIdle_;
    std::size_t inFlight_ = 0; //!< queued + currently executing
    bool stopping_ = false;
};

/**
 * Run @p total independent jobs, at most @p num_threads at a time:
 * job(i) for i in [0, total). Blocks until all complete. With
 * num_threads <= 1 the jobs run inline on the caller's thread, which
 * keeps single-threaded runs trivially debuggable.
 */
void parallelFor(unsigned num_threads, std::size_t total,
                 const std::function<void(std::size_t)> &job);

} // namespace bmc

#endif // BMC_COMMON_THREAD_POOL_HH
