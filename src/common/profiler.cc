#include "common/profiler.hh"

#include <cinttypes>

#include "common/logging.hh"

namespace bmc
{

std::string
ProfileReport::toJson(bool pretty) const
{
    const char *nl = pretty ? "\n" : "";
    const char *ind = pretty ? "  " : "";

    std::string out = "{";
    out += nl;
    auto field = [&](const char *key, const std::string &value,
                     bool last = false) {
        out += strfmt("%s\"%s\": %s%s%s", ind, key, value.c_str(),
                      last ? "" : ",", nl);
        if (!last && !pretty)
            out += " ";
    };
    auto u64 = [](std::uint64_t v) { return strfmt("%" PRIu64, v); };
    auto f6 = [](double v) { return strfmt("%.6f", v); };

    field("warmup_seconds", f6(warmupSeconds));
    field("run_seconds", f6(runSeconds));
    field("collect_seconds", f6(collectSeconds));
    field("events_executed", u64(eventsExecuted));
    field("events_wheel", u64(eventsWheel));
    field("events_heap", u64(eventsHeap));
    field("peak_pending_events", u64(peakPendingEvents));
    field("event_pool_allocated", u64(eventPoolAllocated));
    field("batch_drains", u64(batchDrains));
    field("max_batch_drain", u64(maxBatchDrain));
    field("mshr_peak_live", u64(mshrPeakLive));
    field("peak_channel_queue", u64(peakChannelQueue),
          /*last=*/true);
    out += "}";
    return out;
}

std::vector<std::pair<std::string, double>>
ProfileReport::columns() const
{
    auto d = [](std::uint64_t v) { return static_cast<double>(v); };
    return {
        {"prof_warmup_seconds", warmupSeconds},
        {"prof_run_seconds", runSeconds},
        {"prof_collect_seconds", collectSeconds},
        {"prof_events_executed", d(eventsExecuted)},
        {"prof_events_wheel", d(eventsWheel)},
        {"prof_events_heap", d(eventsHeap)},
        {"prof_peak_pending_events", d(peakPendingEvents)},
        {"prof_event_pool_allocated", d(eventPoolAllocated)},
        {"prof_batch_drains", d(batchDrains)},
        {"prof_max_batch_drain", d(maxBatchDrain)},
        {"prof_mshr_peak_live", d(mshrPeakLive)},
        {"prof_peak_channel_queue", d(peakChannelQueue)},
    };
}

void
Profiler::beginPhase(Phase p)
{
    PhaseClock &pc = phases_[p];
    bmc_assert(!pc.open, "profiler phase %d re-entered while open",
               static_cast<int>(p));
    pc.start = wallNow();
    pc.open = true;
}

void
Profiler::endPhase(Phase p)
{
    PhaseClock &pc = phases_[p];
    bmc_assert(pc.open, "profiler phase %d ended while closed",
               static_cast<int>(p));
    pc.seconds += wallSecondsSince(pc.start);
    pc.open = false;
}

double
Profiler::phaseSeconds(Phase p) const
{
    return phases_[p].seconds;
}

} // namespace bmc
