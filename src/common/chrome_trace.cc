#include "common/chrome_trace.hh"

#include "common/logging.hh"

namespace bmc
{

ChromeTracer::ChromeTracer(const std::string &path,
                           std::uint32_t sample_period)
    : samplePeriod_(sample_period ? sample_period : 1)
{
    out_.open(path, std::ios::out | std::ios::trunc);
    if (!out_)
        bmc_fatal("cannot open trace output file '%s'", path.c_str());
    emitPrefix();
}

ChromeTracer::~ChromeTracer()
{
    if (closed_)
        return;
    closed_ = true;
    // Close traceEvents and emit metadata. Trailing members after the
    // array keep event emission append-only (no comma bookkeeping on
    // the hot path beyond eventsWritten_).
    out_ << "\n  ],\n"
         << "  \"displayTimeUnit\": \"ns\",\n"
         << "  \"otherData\": {\n"
         << "    \"schema_version\": 1,\n"
         << "    \"time_unit\": \"cpu_ticks\",\n"
         << "    \"sample_period\": " << samplePeriod_ << ",\n"
         << "    \"tracks_started\": " << nextTrackId_ << ",\n"
         << "    \"events_written\": " << eventsWritten_ << "\n"
         << "  }\n"
         << "}\n";
    out_.flush();
    out_.close();
}

void
ChromeTracer::emitPrefix()
{
    out_ << "{\n  \"traceEvents\": [";
}

void
ChromeTracer::completeEvent(const char *name, const char *cat,
                            std::uint32_t pid, std::uint64_t tid,
                            Tick start, Tick end,
                            const std::string &args_json)
{
    if (closed_)
        return;
    if (end < start)
        end = start;
    if (eventsWritten_++)
        out_ << ",";
    out_ << "\n    {\"name\": \"" << name << "\", \"cat\": \"" << cat
         << "\", \"ph\": \"X\", \"ts\": " << start
         << ", \"dur\": " << (end - start) << ", \"pid\": " << pid
         << ", \"tid\": " << tid;
    if (!args_json.empty())
        out_ << ", \"args\": " << args_json;
    out_ << "}";
}

void
ChromeTracer::instantEvent(const char *name, const char *cat,
                           std::uint32_t pid, std::uint64_t tid,
                           Tick ts, const std::string &args_json)
{
    if (closed_)
        return;
    if (eventsWritten_++)
        out_ << ",";
    out_ << "\n    {\"name\": \"" << name << "\", \"cat\": \"" << cat
         << "\", \"ph\": \"i\", \"s\": \"t\", \"ts\": " << ts
         << ", \"pid\": " << pid << ", \"tid\": " << tid;
    if (!args_json.empty())
        out_ << ", \"args\": " << args_json;
    out_ << "}";
}

} // namespace bmc
