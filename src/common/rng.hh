/**
 * @file
 * Deterministic random number generation for trace synthesis and
 * random replacement decisions.
 *
 * All randomness in the simulator flows through Rng instances that
 * are explicitly seeded, so every experiment is exactly reproducible
 * from its configuration. The generator is xoshiro256**, which is
 * fast and high quality; a Zipf sampler is provided for hot/cold
 * page-popularity synthesis.
 */

#ifndef BMC_COMMON_RNG_HH
#define BMC_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace bmc
{

/** Seeded xoshiro256** pseudo-random generator. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1);

    /** Re-seed deterministically from a single 64-bit value. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) ; bound must be non-zero. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double real();

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p);

    /** Raw xoshiro256** state, for checkpoint serialization. */
    struct State
    {
        std::uint64_t s[4];
    };

    State
    getState() const
    {
        return {{s_[0], s_[1], s_[2], s_[3]}};
    }

    void
    setState(const State &st)
    {
        s_[0] = st.s[0];
        s_[1] = st.s[1];
        s_[2] = st.s[2];
        s_[3] = st.s[3];
    }

  private:
    std::uint64_t s_[4];
};

/**
 * Zipf-distributed sampler over n items with exponent alpha.
 *
 * Uses the inverse-CDF over a precomputed cumulative table; O(log n)
 * per sample. Item 0 is the most popular.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::uint64_t n, double alpha);

    /** Draw an item index in [0, n). */
    std::uint64_t sample(Rng &rng) const;

    std::uint64_t numItems() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace bmc

#endif // BMC_COMMON_RNG_HH
