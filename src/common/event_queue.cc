#include "common/event_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace bmc
{

namespace
{

constexpr std::uint64_t
packId(std::uint32_t index, std::uint32_t gen)
{
    // +1 keeps 0 unused so a default EventId never matches a node.
    return (static_cast<std::uint64_t>(gen) << 32) |
           (static_cast<std::uint64_t>(index) + 1);
}

} // anonymous namespace

EventQueue::~EventQueue() = default;

EventQueue::Node *
EventQueue::nodeAt(std::uint32_t index)
{
    return &chunks_[index / kChunkSize][index % kChunkSize];
}

EventQueue::Node *
EventQueue::allocNode()
{
    if (freeNodes_.empty()) {
        const auto base = static_cast<std::uint32_t>(poolAllocated_);
        chunks_.push_back(std::make_unique<Node[]>(kChunkSize));
        Node *chunk = chunks_.back().get();
        freeNodes_.reserve(freeNodes_.size() + kChunkSize);
        // Push in reverse so nodes hand out in ascending index order.
        for (std::uint32_t i = kChunkSize; i-- > 0;) {
            chunk[i].index = base + i;
            freeNodes_.push_back(base + i);
        }
        poolAllocated_ += kChunkSize;
    }
    Node *node = nodeAt(freeNodes_.back());
    freeNodes_.pop_back();
    return node;
}

void
EventQueue::freeNode(Node *node)
{
    node->cb = nullptr; // destroy any remaining callable now
    ++node->gen;        // stale every outstanding id for this node
    freeNodes_.push_back(node->index);
}

void
EventQueue::siftUp(std::size_t pos)
{
    const HeapEntry entry = heap_[pos];
    while (pos > 0) {
        const std::size_t parent = (pos - 1) / kArity;
        if (!before(entry, heap_[parent]))
            break;
        heap_[pos] = heap_[parent];
        heap_[pos].node->heapPos = static_cast<std::uint32_t>(pos);
        pos = parent;
    }
    heap_[pos] = entry;
    entry.node->heapPos = static_cast<std::uint32_t>(pos);
}

void
EventQueue::siftDown(std::size_t pos)
{
    const HeapEntry entry = heap_[pos];
    const std::size_t size = heap_.size();
    for (;;) {
        const std::size_t first = kArity * pos + 1;
        if (first >= size)
            break;
        const std::size_t last = std::min(first + kArity, size);
        std::size_t best = first;
        for (std::size_t child = first + 1; child < last; ++child) {
            if (before(heap_[child], heap_[best]))
                best = child;
        }
        if (!before(heap_[best], entry))
            break;
        heap_[pos] = heap_[best];
        heap_[pos].node->heapPos = static_cast<std::uint32_t>(pos);
        pos = best;
    }
    heap_[pos] = entry;
    entry.node->heapPos = static_cast<std::uint32_t>(pos);
}

void
EventQueue::removeFromHeap(std::size_t pos)
{
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    if (pos == heap_.size())
        return; // removed the tail
    heap_[pos] = last;
    last.node->heapPos = static_cast<std::uint32_t>(pos);
    // The replacement may need to move either direction.
    if (pos > 0 && before(last, heap_[(pos - 1) / kArity]))
        siftUp(pos);
    else
        siftDown(pos);
}

EventQueue::EventId
EventQueue::enqueue(Tick when, Node *node)
{
    bmc_assert(when >= now_,
               "scheduling into the past: when=%llu now=%llu",
               static_cast<unsigned long long>(when),
               static_cast<unsigned long long>(now_));
    node->heapPos = static_cast<std::uint32_t>(heap_.size());
    heap_.push_back({when, nextSeq_++, node});
    siftUp(heap_.size() - 1);
    return packId(node->index, node->gen);
}

EventQueue::EventId
EventQueue::scheduleAt(Tick when, Callback cb)
{
    Node *node = allocNode();
    node->cb = std::move(cb);
    return enqueue(when, node);
}

bool
EventQueue::cancel(EventId id)
{
    if (id == 0)
        return false;
    const auto index = static_cast<std::uint32_t>(id & 0xffffffff) - 1;
    const auto gen = static_cast<std::uint32_t>(id >> 32);
    if (index >= poolAllocated_)
        return false;
    Node *node = nodeAt(index);
    if (node->gen != gen)
        return false; // already executed, cancelled, or reused
    removeFromHeap(node->heapPos);
    freeNode(node);
    return true;
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    Node *top = heap_.front().node;
    now_ = heap_.front().when;
    removeFromHeap(0);
    ++numExecuted_;
    // Invoke straight from node storage -- no move. The generation
    // bump must happen *before* the call so a stale id held by the
    // callback itself fails to cancel; the node returns to the free
    // list only afterwards, so reentrant scheduling cannot clobber
    // the callable while it runs.
    ++top->gen;
    top->cb();
    top->cb = nullptr;
    freeNodes_.push_back(top->index);
    return true;
}

Tick
EventQueue::run(Tick until)
{
    while (!heap_.empty() && heap_.front().when <= until)
        step();
    return now_;
}

} // namespace bmc
