#include "common/event_queue.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace bmc
{

namespace
{

constexpr std::uint64_t
packId(std::uint32_t index, std::uint32_t gen)
{
    // +1 keeps 0 unused so a default EventId never matches a node.
    return (static_cast<std::uint64_t>(gen) << 32) |
           (static_cast<std::uint64_t>(index) + 1);
}

} // anonymous namespace

EventQueue::EventQueue() { wheel_.resize(kWheelSlots); }

EventQueue::~EventQueue() = default;

EventQueue::Node *
EventQueue::nodeAt(std::uint32_t index)
{
    return &chunks_[index / kChunkSize][index % kChunkSize];
}

EventQueue::Node *
EventQueue::allocNode()
{
    if (freeNodes_.empty()) {
        const auto base = static_cast<std::uint32_t>(poolAllocated_);
        chunks_.push_back(std::make_unique<Node[]>(kChunkSize));
        Node *chunk = chunks_.back().get();
        freeNodes_.reserve(freeNodes_.size() + kChunkSize);
        // Push in reverse so nodes hand out in ascending index order.
        for (std::uint32_t i = kChunkSize; i-- > 0;) {
            chunk[i].index = base + i;
            freeNodes_.push_back(base + i);
        }
        poolAllocated_ += kChunkSize;
    }
    Node *node = nodeAt(freeNodes_.back());
    freeNodes_.pop_back();
    // Every pending event holds exactly one live node, so the pool's
    // live high-water IS the peak-pending gauge -- tracked here where
    // the free-list size is already in hand, keeping the cost off the
    // wheel/heap insert paths.
    const std::size_t live = poolAllocated_ - freeNodes_.size();
    if (live > peakPending_)
        peakPending_ = live;
    return node;
}

void
EventQueue::freeNode(Node *node)
{
    node->cb = nullptr; // destroy any remaining callable now
    ++node->gen;        // stale every outstanding id for this node
    freeNodes_.push_back(node->index);
}

// ---------------------------------------------------------------- wheel

void
EventQueue::wheelSetBit(std::uint64_t slot)
{
    const std::uint64_t word = slot >> 6;
    wheelWords_[word] |= 1ull << (slot & 63);
    wheelSummary_[word >> 6] |= 1ull << (word & 63);
}

void
EventQueue::wheelClearBit(std::uint64_t slot)
{
    const std::uint64_t word = slot >> 6;
    wheelWords_[word] &= ~(1ull << (slot & 63));
    if (wheelWords_[word] == 0)
        wheelSummary_[word >> 6] &= ~(1ull << (word & 63));
}

void
EventQueue::wheelInsert(Tick when, Node *node)
{
    const std::uint64_t slot = when & kWheelMask;
    node->when = when;
    node->heapPos = kInWheel;
    node->next = npos32;
    Slot &s = wheel_[slot];
    if (s.tail == npos32) {
        node->prev = npos32;
        s.head = s.tail = node->index;
        wheelSetBit(slot);
    } else {
        node->prev = s.tail;
        nodeAt(s.tail)->next = node->index;
        s.tail = node->index;
    }
    ++wheelCount_;
}

void
EventQueue::wheelRemove(Node *node)
{
    const std::uint64_t slot = node->when & kWheelMask;
    Slot &s = wheel_[slot];
    if (node->prev != npos32)
        nodeAt(node->prev)->next = node->next;
    else
        s.head = node->next;
    if (node->next != npos32)
        nodeAt(node->next)->prev = node->prev;
    else
        s.tail = node->prev;
    --wheelCount_;
    if (s.head == npos32)
        wheelClearBit(slot);
}

EventQueue::Node *
EventQueue::wheelPopHead(std::uint64_t slot)
{
    Slot &s = wheel_[slot];
    Node *node = nodeAt(s.head);
    s.head = node->next;
    if (s.head == npos32) {
        s.tail = npos32;
        wheelClearBit(slot);
    } else {
        nodeAt(s.head)->prev = npos32;
    }
    --wheelCount_;
    return node;
}

std::uint64_t
EventQueue::wheelNextWord(std::uint64_t word) const
{
    const std::uint64_t g0 = word >> 6;
    const unsigned gb = static_cast<unsigned>(word & 63);
    // Summary bits strictly after this word, inside its summary word.
    std::uint64_t m =
        gb < 63 ? (wheelSummary_[g0] & (~0ull << (gb + 1))) : 0ull;
    if (m)
        return (g0 << 6) +
               static_cast<std::uint64_t>(std::countr_zero(m));
    // Later summary words, wrapping; the starting word itself comes
    // around last (its low bits are the fully wrapped case).
    for (std::uint64_t i = 1; i <= kSummaryWords; ++i) {
        const std::uint64_t g = (g0 + i) & (kSummaryWords - 1);
        m = wheelSummary_[g];
        if (i == kSummaryWords)
            m &= (gb ? ((1ull << gb) - 1) : 0ull) | (1ull << gb);
        if (m)
            return (g << 6) +
                   static_cast<std::uint64_t>(std::countr_zero(m));
    }
    bmc_assert(false, "wheelNextWord on an empty wheel");
    return 0;
}

std::uint64_t
EventQueue::wheelNextSlot() const
{
    // Cyclic scan from now_'s slot: the window is exactly kWheelSlots
    // ticks, so each slot maps to one tick in [now_, now_+kWheelSlots)
    // and the first occupied slot in cyclic order is the earliest one.
    const std::uint64_t s0 = now_ & kWheelMask;
    const std::uint64_t w0 = s0 >> 6;
    const unsigned b0 = static_cast<unsigned>(s0 & 63);

    // Bits >= b0 in the current word.
    const std::uint64_t m = wheelWords_[w0] & (~0ull << b0);
    if (m)
        return (w0 << 6) +
               static_cast<std::uint64_t>(std::countr_zero(m));

    // Otherwise hop words via the summary level. When the scan wraps
    // all the way back to w0, its surviving bits are all < b0 (the
    // high ones were checked above), which is exactly the wrapped
    // region, so a plain countr_zero stays correct.
    const std::uint64_t w = wheelNextWord(w0);
    return (w << 6) + static_cast<std::uint64_t>(
                          std::countr_zero(wheelWords_[w]));
}

// ----------------------------------------------------------------- heap

void
EventQueue::siftUp(std::size_t pos)
{
    const HeapEntry entry = heap_[pos];
    while (pos > 0) {
        const std::size_t parent = (pos - 1) / kArity;
        if (!before(entry, heap_[parent]))
            break;
        heap_[pos] = heap_[parent];
        heap_[pos].node->heapPos = static_cast<std::uint32_t>(pos);
        pos = parent;
    }
    heap_[pos] = entry;
    entry.node->heapPos = static_cast<std::uint32_t>(pos);
}

void
EventQueue::siftDown(std::size_t pos)
{
    const HeapEntry entry = heap_[pos];
    const std::size_t size = heap_.size();
    for (;;) {
        const std::size_t first = kArity * pos + 1;
        if (first >= size)
            break;
        const std::size_t last = std::min(first + kArity, size);
        std::size_t best = first;
        for (std::size_t child = first + 1; child < last; ++child) {
            if (before(heap_[child], heap_[best]))
                best = child;
        }
        if (!before(heap_[best], entry))
            break;
        heap_[pos] = heap_[best];
        heap_[pos].node->heapPos = static_cast<std::uint32_t>(pos);
        pos = best;
    }
    heap_[pos] = entry;
    entry.node->heapPos = static_cast<std::uint32_t>(pos);
}

void
EventQueue::removeFromHeap(std::size_t pos)
{
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    if (pos == heap_.size())
        return; // removed the tail
    heap_[pos] = last;
    last.node->heapPos = static_cast<std::uint32_t>(pos);
    // The replacement may need to move either direction.
    if (pos > 0 && before(last, heap_[(pos - 1) / kArity]))
        siftUp(pos);
    else
        siftDown(pos);
}

void
EventQueue::heapPush(Tick when, Node *node)
{
    node->heapPos = static_cast<std::uint32_t>(heap_.size());
    heap_.push_back({when, nextSeq_++, node});
    siftUp(heap_.size() - 1);
}

// ------------------------------------------------------------ execution

EventQueue::EventId
EventQueue::enqueue(Tick when, Node *node)
{
    bmc_assert(when >= now_,
               "scheduling into the past: when=%llu now=%llu",
               static_cast<unsigned long long>(when),
               static_cast<unsigned long long>(now_));
    if (when - now_ < kWheelSlots)
        wheelInsert(when, node);
    else
        heapPush(when, node);
    return packId(node->index, node->gen);
}

EventQueue::EventId
EventQueue::scheduleAt(Tick when, Callback cb)
{
    Node *node = allocNode();
    node->cb = std::move(cb);
    return enqueue(when, node);
}

bool
EventQueue::cancel(EventId id)
{
    if (id == 0)
        return false;
    const auto index = static_cast<std::uint32_t>(id & 0xffffffff) - 1;
    const auto gen = static_cast<std::uint32_t>(id >> 32);
    if (index >= poolAllocated_)
        return false;
    Node *node = nodeAt(index);
    if (node->gen != gen)
        return false; // already executed, cancelled, or reused
    if (node->heapPos == kInWheel)
        wheelRemove(node);
    else
        removeFromHeap(node->heapPos);
    freeNode(node);
    return true;
}

void
EventQueue::invoke(Node *node)
{
    ++numExecuted_;
    // Invoke straight from node storage -- no move. The generation
    // bump must happen *before* the call so a stale id held by the
    // callback itself fails to cancel; the node returns to the free
    // list only afterwards, so reentrant scheduling cannot clobber
    // the callable while it runs.
    ++node->gen;
    node->cb();
    node->cb = nullptr;
    freeNodes_.push_back(node->index);
}

bool
EventQueue::step()
{
    // Min-merge the wheel and the overflow heap. Every wheel event
    // sits inside [now_, now_ + kWheelSlots) -- it was in-window when
    // inserted and now_ only grows -- so the cyclic slot scan yields
    // the wheel minimum directly. A same-tick tie goes to the heap:
    // a heap resident at tick T was scheduled while T was outside
    // the window, strictly before anything the wheel holds for T,
    // so heap-first IS insertion order.
    if (wheelCount_ > 0) {
        const std::uint64_t slot = wheelNextSlot();
        Node *node = nodeAt(wheel_[slot].head);
        if (heap_.empty() || node->when < heap_.front().when) {
            wheelPopHead(slot);
            now_ = node->when;
            invoke(node);
            return true;
        }
    } else if (heap_.empty()) {
        return false;
    }
    Node *node = heap_.front().node;
    now_ = heap_.front().when;
    removeFromHeap(0);
    ++heapExecuted_;
    invoke(node);
    return true;
}

Tick
EventQueue::run(Tick until)
{
    for (;;) {
        const Tick heap_when =
            heap_.empty() ? maxTick : heap_.front().when;
        if (wheelCount_ > 0) {
            const std::uint64_t slot = wheelNextSlot();
            Slot &s = wheel_[slot];
            const Tick when = nodeAt(s.head)->when;
            if (when < heap_when) {
                if (when > until)
                    break;
                now_ = when;
                // Batch-drain the whole slot: every event mapping
                // here sits at exactly tick now_ (one tick per slot
                // inside the window, and same-tick heap events --
                // scheduled strictly earlier -- already ran via the
                // heap branch), so zero-delay reschedules join the
                // same batch and the next-slot bitmap search runs
                // once per tick instead of once per event.
                std::uint64_t batch = 0;
                while (s.head != npos32) {
                    invoke(wheelPopHead(slot));
                    ++batch;
                }
                ++batchDrains_;
                if (batch > maxBatch_)
                    maxBatch_ = batch;
                continue;
            }
        }
        if (heap_.empty() || heap_when > until)
            break;
        Node *node = heap_.front().node;
        now_ = heap_when;
        removeFromHeap(0);
        ++heapExecuted_;
        invoke(node);
    }
    return now_;
}

} // namespace bmc
