#include "common/event_queue.hh"

#include "common/logging.hh"

namespace bmc
{

void
EventQueue::scheduleAt(Tick when, Callback cb)
{
    bmc_assert(when >= now_,
               "scheduling into the past: when=%llu now=%llu",
               static_cast<unsigned long long>(when),
               static_cast<unsigned long long>(now_));
    heap_.push(Entry{when, nextSeq_++, std::move(cb)});
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    // priority_queue::top() is const; move out via const_cast is UB,
    // so copy the callback handle (std::function copy) instead.
    Entry e = heap_.top();
    heap_.pop();
    now_ = e.when;
    ++numExecuted_;
    e.cb();
    return true;
}

Tick
EventQueue::run(Tick until)
{
    while (!heap_.empty() && heap_.top().when <= until)
        step();
    return now_;
}

} // namespace bmc
