#include "common/thread_pool.hh"

#include "common/logging.hh"

namespace bmc
{

ThreadPool::ThreadPool(unsigned num_threads)
{
    if (num_threads == 0)
        num_threads = defaultThreads();
    workers_.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wakeWorker_.notify_all();
    for (auto &w : workers_)
        w.join();
}

unsigned
ThreadPool::defaultThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
ThreadPool::submit(Job job)
{
    bmc_assert(job != nullptr, "null job submitted");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        bmc_assert(!stopping_, "submit after shutdown");
        queue_.push_back(std::move(job));
        ++inFlight_;
    }
    wakeWorker_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allIdle_.wait(lock, [this] { return inFlight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wakeWorker_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --inFlight_;
            if (inFlight_ == 0)
                allIdle_.notify_all();
        }
    }
}

void
parallelFor(unsigned num_threads, std::size_t total,
            const std::function<void(std::size_t)> &job)
{
    if (num_threads <= 1) {
        for (std::size_t i = 0; i < total; ++i)
            job(i);
        return;
    }
    ThreadPool pool(num_threads);
    for (std::size_t i = 0; i < total; ++i)
        pool.submit([&job, i] { job(i); });
    pool.wait();
}

} // namespace bmc
