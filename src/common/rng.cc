#include "common/rng.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/bitops.hh"

namespace bmc
{

namespace
{

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(std::uint64_t seed_val)
{
    seed(seed_val);
}

void
Rng::seed(std::uint64_t seed_val)
{
    // Expand the single seed with SplitMix64, per xoshiro guidance.
    std::uint64_t x = seed_val;
    for (auto &s : s_) {
        x += 0x9e3779b97f4a7c15ULL;
        s = mix64(x);
    }
    // Avoid the all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    assert(bound != 0);
    // Lemire-style rejection to remove modulo bias.
    const std::uint64_t threshold = (-bound) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::range(std::uint64_t lo, std::uint64_t hi)
{
    assert(lo <= hi);
    return lo + below(hi - lo + 1);
}

double
Rng::real()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return real() < p;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha)
{
    assert(n > 0);
    cdf_.resize(n);
    double sum = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
        cdf_[i] = sum;
    }
    for (auto &c : cdf_)
        c /= sum;
}

std::uint64_t
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.real();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::uint64_t>(it - cdf_.begin());
}

} // namespace bmc
