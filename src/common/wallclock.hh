/**
 * @file
 * The project's single wall-clock entry point.
 *
 * Simulated time is EventQueue::now(); wall time exists only for
 * telemetry (sweep progress/ETA, opt-in wall_seconds timing fields,
 * perf harnesses) and must never influence simulated state -- that
 * is the determinism contract the -jN bit-identity tests pin down
 * and the bmclint `no-wallclock` rule enforces lexically: code in
 * src/sim, src/dram, src/dramcache and src/cache may not touch
 * std::chrono directly and instead calls this header, keeping every
 * wall-clock read in the tree greppable from one place.
 */

#ifndef BMC_COMMON_WALLCLOCK_HH
#define BMC_COMMON_WALLCLOCK_HH

#include <chrono>
#include <thread>

namespace bmc
{

/** Opaque wall-clock instant (steady, monotonic). */
using WallInstant = std::chrono::steady_clock::time_point;

/** Current wall-clock instant. */
inline WallInstant
wallNow()
{
    return std::chrono::steady_clock::now();
}

/** Seconds elapsed since @p start, as a double (telemetry only). */
inline double
wallSecondsSince(WallInstant start)
{
    return std::chrono::duration<double>(wallNow() - start).count();
}

/**
 * Wall-clock duration for telemetry waits. Heartbeat threads in
 * timing-model directories pass wallDuration(seconds) to
 * condition_variable::wait_for so the wait interval, like every
 * other wall-clock quantity, is expressed through this header.
 */
using WallDuration = std::chrono::duration<double>;

/** @p seconds as a WallDuration (telemetry waits only). */
inline WallDuration
wallDuration(double seconds)
{
    return WallDuration(seconds);
}

/**
 * Block the calling thread for @p seconds of wall time. For polling
 * and retry loops off the determinism path (daemon connect retries,
 * fault-injected slow cells) -- never inside simulated time.
 */
inline void
wallSleep(double seconds)
{
    std::this_thread::sleep_for(wallDuration(seconds));
}

} // namespace bmc

#endif // BMC_COMMON_WALLCLOCK_HH
