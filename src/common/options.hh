/**
 * @file
 * Minimal command-line option parser for bench/example binaries.
 *
 * Supports "--name=value", "--name value" and boolean "--flag"
 * (with "--no-flag" negation). Unknown options are fatal so typos
 * in experiment scripts never silently run the wrong config.
 */

#ifndef BMC_COMMON_OPTIONS_HH
#define BMC_COMMON_OPTIONS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bmc
{

/** Declarative option set with typed accessors. */
class Options
{
  public:
    /** @param program_desc one-line description printed by --help. */
    explicit Options(std::string program_desc);

    Options &addFlag(const std::string &name, bool def,
                     const std::string &desc);
    Options &addInt(const std::string &name, std::int64_t def,
                    const std::string &desc);
    Options &addUint(const std::string &name, std::uint64_t def,
                     const std::string &desc);
    Options &addDouble(const std::string &name, double def,
                       const std::string &desc);
    Options &addString(const std::string &name, const std::string &def,
                       const std::string &desc);

    /**
     * Parse argv. Exits(0) after printing help on --help; calls
     * fatal() on unknown or malformed options.
     */
    void parse(int argc, char **argv);

    bool flag(const std::string &name) const;
    std::int64_t getInt(const std::string &name) const;
    std::uint64_t getUint(const std::string &name) const;
    double getDouble(const std::string &name) const;
    const std::string &getString(const std::string &name) const;

    /** Render the --help text. */
    std::string helpText() const;

  private:
    enum class Kind { Flag, Int, Uint, Double, String };

    struct Opt
    {
        Kind kind;
        std::string desc;
        std::string value; // textual representation
        std::string def;
    };

    const Opt &find(const std::string &name, Kind kind) const;
    void set(const std::string &name, const std::string &value);

    std::string programDesc_;
    std::map<std::string, Opt> opts_;
    std::vector<std::string> order_;
};

} // namespace bmc

#endif // BMC_COMMON_OPTIONS_HH
