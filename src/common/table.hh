/**
 * @file
 * ASCII table printer used by the bench harnesses to emit the rows
 * and series of each paper table/figure in a uniform format.
 */

#ifndef BMC_COMMON_TABLE_HH
#define BMC_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace bmc
{

/**
 * Simple right-padded text table. Columns are sized to their widest
 * cell; numeric convenience overloads format with fixed precision.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row; subsequent cell() calls fill it. */
    Table &row();

    Table &cell(const std::string &text);
    Table &cell(const char *text);
    /** Format a double with @p precision decimal places. */
    Table &cell(double v, int precision = 2);
    Table &cell(std::uint64_t v);
    Table &cell(int v);

    /** As cell(double) but with a trailing percent sign. */
    Table &pct(double v, int precision = 1);

    /** Render the whole table including header separator. */
    std::string str() const;

    /** Render to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace bmc

#endif // BMC_COMMON_TABLE_HH
