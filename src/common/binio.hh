/**
 * @file
 * Endian-stable binary stream primitives for checkpoint files.
 *
 * BinWriter appends fixed-width little-endian integers, doubles (as
 * their IEEE-754 bit pattern) and length-prefixed byte strings to an
 * in-memory buffer; BinReader walks the same layout back. Both sides
 * write byte-by-byte, so checkpoints are byte-identical across hosts
 * regardless of native endianness or struct padding, and a reader
 * underrun is a clean bmc_fatal (SimError under ScopedThrowErrors),
 * never an out-of-bounds read.
 *
 * The checkpoint schema hash pinned in src/sim/checkpoint.hh is a
 * fingerprint over every .u8()/.u16()/... call site in src/ files
 * that mention BinWriter/BinReader; bmclint's ckpt-versioned rule
 * recomputes it so any serialized-field change forces a
 * kCheckpointVersion bump.
 */

#ifndef BMC_COMMON_BINIO_HH
#define BMC_COMMON_BINIO_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/logging.hh"

namespace bmc
{

/** Append-only little-endian byte stream. */
class BinWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(static_cast<char>(v));
    }

    void
    u16(std::uint16_t v)
    {
        putLe(v, 2);
    }

    void
    u32(std::uint32_t v)
    {
        putLe(v, 4);
    }

    void
    u64(std::uint64_t v)
    {
        putLe(v, 8);
    }

    void
    f64(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        __builtin_memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    /** Length-prefixed (u64) byte string. */
    void
    str(const std::string &s)
    {
        u64(s.size());
        buf_.append(s);
    }

    /** Raw bytes, no length prefix (caller-framed sections). */
    void
    bytes(const void *data, std::size_t n)
    {
        buf_.append(static_cast<const char *>(data), n);
    }

    const std::string &data() const { return buf_; }
    std::size_t size() const { return buf_.size(); }

  private:
    void
    putLe(std::uint64_t v, unsigned n)
    {
        for (unsigned i = 0; i < n; ++i)
            buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    std::string buf_;
};

/** Bounds-checked reader over a BinWriter-shaped byte string. */
class BinReader
{
  public:
    explicit BinReader(const std::string &data) : data_(data) {}

    std::uint8_t
    u8()
    {
        need(1);
        return static_cast<std::uint8_t>(data_[pos_++]);
    }

    std::uint16_t
    u16()
    {
        return static_cast<std::uint16_t>(getLe(2));
    }

    std::uint32_t
    u32()
    {
        return static_cast<std::uint32_t>(getLe(4));
    }

    std::uint64_t
    u64()
    {
        return getLe(8);
    }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v;
        __builtin_memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        const std::uint64_t n = u64();
        need(n);
        std::string s = data_.substr(pos_, n);
        pos_ += n;
        return s;
    }

    /** Bytes consumed so far. */
    std::size_t pos() const { return pos_; }

    /** Bytes left unread. */
    std::size_t remaining() const { return data_.size() - pos_; }

    bool atEnd() const { return pos_ == data_.size(); }

  private:
    void
    need(std::uint64_t n)
    {
        if (n > data_.size() - pos_) {
            bmc_fatal("checkpoint stream underrun: need %llu bytes "
                      "at offset %zu of %zu",
                      static_cast<unsigned long long>(n), pos_,
                      data_.size());
        }
    }

    std::uint64_t
    getLe(unsigned n)
    {
        need(n);
        std::uint64_t v = 0;
        for (unsigned i = 0; i < n; ++i) {
            v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(
                     data_[pos_ + i]))
                 << (8 * i);
        }
        pos_ += n;
        return v;
    }

    const std::string &data_;
    std::size_t pos_ = 0;
};

} // namespace bmc

#endif // BMC_COMMON_BINIO_HH
