#include "common/stats.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace bmc::stats
{

StatBase::StatBase(StatGroup &group, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    group.add(this);
}

std::string
Counter::render() const
{
    return std::to_string(value_);
}

std::string
Average::render() const
{
    return strfmt("%.4f (n=%llu)", mean(),
                  static_cast<unsigned long long>(count_));
}

Histogram::Histogram(StatGroup &group, std::string name, std::string desc,
                     unsigned num_buckets)
    : StatBase(group, std::move(name), std::move(desc)),
      buckets_(num_buckets, 0)
{
    bmc_assert(num_buckets > 0, "histogram needs at least one bucket");
}

void
Histogram::sample(unsigned bucket)
{
    const unsigned idx =
        std::min<unsigned>(bucket,
                           static_cast<unsigned>(buckets_.size()) - 1);
    ++buckets_[idx];
    ++total_;
}

double
Histogram::fraction(unsigned i) const
{
    return total_ == 0
               ? 0.0
               : static_cast<double>(buckets_.at(i)) /
                     static_cast<double>(total_);
}

std::string
Histogram::render() const
{
    std::ostringstream os;
    os << "[";
    for (size_t i = 0; i < buckets_.size(); ++i) {
        if (i)
            os << ", ";
        os << buckets_[i];
    }
    os << "]";
    return os.str();
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    total_ = 0;
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : name_(std::move(name))
{
    if (parent)
        parent->addChild(this);
}

void
StatGroup::resetAll()
{
    for (auto *s : stats_)
        s->reset();
    for (auto *c : children_)
        c->resetAll();
}

std::string
StatGroup::dump(const std::string &prefix) const
{
    std::ostringstream os;
    const std::string full =
        prefix.empty() ? name_ : prefix + "." + name_;
    for (const auto *s : stats_) {
        os << full << "." << s->name() << " = " << s->render();
        if (!s->desc().empty())
            os << "  # " << s->desc();
        os << "\n";
    }
    for (const auto *c : children_)
        os << c->dump(full);
    return os.str();
}

} // namespace bmc::stats
