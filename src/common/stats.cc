#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace bmc::stats
{

namespace
{

/** Fixed, locale-independent double rendering for JSON output. */
std::string
jsonDouble(double v)
{
    if (!std::isfinite(v))
        return "0";
    return strfmt("%.9g", v);
}

} // anonymous namespace

StatBase::StatBase(StatGroup &group, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    group.add(this);
}

std::string
StatBase::jsonValue() const
{
    // Default: most stats render as a bare number already; stats
    // whose render() is not valid JSON override this.
    return render();
}

std::string
Counter::render() const
{
    return std::to_string(value_);
}

std::string
Counter::jsonValue() const
{
    return std::to_string(value_);
}

Ratio::Ratio(StatGroup &group, std::string name, std::string desc,
             const Counter &numer, const Counter &denom)
    : StatBase(group, std::move(name), std::move(desc)),
      numer_(numer), denom_(denom)
{
}

double
Ratio::value() const
{
    const std::uint64_t den = denom_.value();
    return den ? static_cast<double>(numer_.value()) /
                     static_cast<double>(den)
               : 0.0;
}

std::string
Ratio::render() const
{
    return strfmt("%.6f (%llu / %llu)", value(),
                  static_cast<unsigned long long>(numer_.value()),
                  static_cast<unsigned long long>(denom_.value()));
}

std::string
Ratio::jsonValue() const
{
    return jsonDouble(value());
}

Formula::Formula(StatGroup &group, std::string name, std::string desc,
                 std::function<double()> fn)
    : StatBase(group, std::move(name), std::move(desc)),
      fn_(std::move(fn))
{
    bmc_assert(fn_ != nullptr, "formula needs a callable");
}

std::string
Formula::render() const
{
    return strfmt("%.6f", value());
}

std::string
Formula::jsonValue() const
{
    return jsonDouble(value());
}

std::string
Average::render() const
{
    return strfmt("%.4f (n=%llu)", mean(),
                  static_cast<unsigned long long>(count_));
}

std::string
Average::jsonValue() const
{
    return strfmt("{\"mean\": %s, \"count\": %llu}",
                  jsonDouble(mean()).c_str(),
                  static_cast<unsigned long long>(count_));
}

Histogram::Histogram(StatGroup &group, std::string name,
                     std::string desc, unsigned num_buckets)
    : StatBase(group, std::move(name), std::move(desc)),
      buckets_(num_buckets, 0)
{
    bmc_assert(num_buckets > 0, "histogram needs at least one bucket");
}

void
Histogram::sample(unsigned bucket)
{
    const unsigned idx =
        std::min<unsigned>(bucket,
                           static_cast<unsigned>(buckets_.size()) - 1);
    ++buckets_[idx];
    ++total_;
}

double
Histogram::fraction(unsigned i) const
{
    return total_ == 0
               ? 0.0
               : static_cast<double>(buckets_.at(i)) /
                     static_cast<double>(total_);
}

std::string
Histogram::render() const
{
    std::ostringstream os;
    os << "[";
    for (size_t i = 0; i < buckets_.size(); ++i) {
        if (i)
            os << ", ";
        os << buckets_[i];
    }
    os << "]";
    return os.str();
}

std::string
Histogram::jsonValue() const
{
    return strfmt("{\"total\": %llu, \"buckets\": %s}",
                  static_cast<unsigned long long>(total_),
                  render().c_str());
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    total_ = 0;
}

LatencyHistogram::LatencyHistogram(StatGroup &group, std::string name,
                                   std::string desc,
                                   unsigned num_buckets)
    : StatBase(group, std::move(name), std::move(desc)),
      buckets_(num_buckets, 0)
{
    bmc_assert(num_buckets >= 2,
               "latency histogram needs at least two buckets");
}

void
LatencyHistogram::sample(std::uint64_t v)
{
    // bit_width(v): 0 for v == 0, floor(log2(v)) + 1 otherwise.
    unsigned idx = 0;
    for (std::uint64_t x = v; x != 0; x >>= 1)
        ++idx;
    idx = std::min<unsigned>(
        idx, static_cast<unsigned>(buckets_.size()) - 1);
    ++buckets_[idx];
    ++count_;
    sum_ += static_cast<double>(v);
    max_ = std::max(max_, v);
}

std::uint64_t
LatencyHistogram::bucketUpperEdge(unsigned i)
{
    if (i == 0)
        return 0;
    if (i >= 64)
        return ~0ULL;
    return (1ULL << i) - 1;
}

std::uint64_t
LatencyHistogram::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    p = std::clamp(p, 0.0, 1.0);
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(p * static_cast<double>(count_))));
    std::uint64_t cum = 0;
    for (unsigned i = 0; i < buckets_.size(); ++i) {
        cum += buckets_[i];
        if (cum >= rank) {
            // The last bucket also holds clamped values; its true
            // upper edge is the largest value ever observed.
            if (i + 1 == buckets_.size())
                return max_;
            return std::min(bucketUpperEdge(i), max_);
        }
    }
    return max_;
}

std::string
LatencyHistogram::render() const
{
    return strfmt("n=%llu mean=%.1f p50=%llu p95=%llu p99=%llu "
                  "max=%llu",
                  static_cast<unsigned long long>(count_), mean(),
                  static_cast<unsigned long long>(p50()),
                  static_cast<unsigned long long>(p95()),
                  static_cast<unsigned long long>(p99()),
                  static_cast<unsigned long long>(max_));
}

std::string
LatencyHistogram::jsonValue() const
{
    std::ostringstream buckets;
    buckets << "[";
    for (size_t i = 0; i < buckets_.size(); ++i) {
        if (i)
            buckets << ", ";
        buckets << buckets_[i];
    }
    buckets << "]";
    return strfmt(
        "{\"count\": %llu, \"mean\": %s, \"p50\": %llu, "
        "\"p95\": %llu, \"p99\": %llu, \"max\": %llu, "
        "\"log2_buckets\": %s}",
        static_cast<unsigned long long>(count_),
        jsonDouble(mean()).c_str(),
        static_cast<unsigned long long>(p50()),
        static_cast<unsigned long long>(p95()),
        static_cast<unsigned long long>(p99()),
        static_cast<unsigned long long>(max_),
        buckets.str().c_str());
}

void
LatencyHistogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    max_ = 0;
    sum_ = 0.0;
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : name_(std::move(name))
{
    if (parent)
        parent->addChild(this);
}

void
StatGroup::resetAll()
{
    for (auto *s : stats_)
        s->reset();
    for (auto *c : children_)
        c->resetAll();
}

std::string
StatGroup::dump(const std::string &prefix) const
{
    std::ostringstream os;
    const std::string full =
        prefix.empty() ? name_ : prefix + "." + name_;
    for (const auto *s : stats_) {
        os << full << "." << s->name() << " = " << s->render();
        if (!s->desc().empty())
            os << "  # " << s->desc();
        os << "\n";
    }
    for (const auto *c : children_)
        os << c->dump(full);
    return os.str();
}

std::string
StatGroup::toJson(bool pretty, unsigned indent) const
{
    const std::string pad =
        pretty ? std::string(2 * (indent + 1), ' ') : "";
    const std::string close_pad =
        pretty ? std::string(2 * indent, ' ') : "";
    const char *nl = pretty ? "\n" : "";

    std::ostringstream os;
    os << "{" << nl;
    bool first = true;
    for (const auto *s : stats_) {
        if (!first)
            os << "," << (pretty ? "" : " ") << nl;
        first = false;
        os << pad << "\"" << s->name() << "\": " << s->jsonValue();
    }
    for (const auto *c : children_) {
        if (!first)
            os << "," << (pretty ? "" : " ") << nl;
        first = false;
        os << pad << "\"" << c->name()
           << "\": " << c->toJson(pretty, indent + 1);
    }
    os << nl << close_pad << "}";
    return os.str();
}

} // namespace bmc::stats
