/**
 * @file
 * Simulator self-profiling: per-run phase wall timers plus cheap
 * always-on kernel gauges, aggregated into one ProfileReport.
 *
 * The profiler observes the simulator, never the simulation: every
 * value here is either wall-clock telemetry (phase seconds, routed
 * through common/wallclock.hh) or a monotonic gauge the kernel
 * already maintains (event counts, pool high-water marks, peak
 * occupancies). Nothing feeds back into simulated state, so results
 * are bit-identical whether a report is exported or not -- which is
 * why `bmcsim --profile` and `bmcsweep --profile` are opt-in: the
 * wall-clock fields genuinely differ run to run, and default-off
 * keeps sweep JSONL byte-comparable.
 *
 * Gauge sources:
 *   - EventQueue: executed split wheel vs heap, peak pending depth,
 *     pool high-water mark, batch-drain count and largest batch.
 *   - MshrFile: peak live entries.
 *   - DRAM channels: peak per-channel queue depth (max over
 *     channels of both DRAM systems).
 */

#ifndef BMC_COMMON_PROFILER_HH
#define BMC_COMMON_PROFILER_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/wallclock.hh"

namespace bmc
{

/**
 * One run's profile: phase wall timings plus kernel gauges. Plain
 * data; System::profile() fills one from its components after run().
 */
struct ProfileReport
{
    // ------------------------------- phase wall seconds -----------
    /** Functional fast-forward / warm-state restore. */
    double warmupSeconds = 0.0;
    /** The timed event loop (System::run's drive phase). */
    double runSeconds = 0.0;
    /** Post-drain stat collection and final checker audits. */
    double collectSeconds = 0.0;

    // ------------------------------- event-queue gauges -----------
    std::uint64_t eventsExecuted = 0;
    /** Executed via the near-future timing wheel. */
    std::uint64_t eventsWheel = 0;
    /** Executed via the far-future overflow heap. */
    std::uint64_t eventsHeap = 0;
    /** Peak simultaneous pending events (wheel + heap). */
    std::uint64_t peakPendingEvents = 0;
    /** Event-node pool high-water mark. */
    std::uint64_t eventPoolAllocated = 0;
    /** Same-tick wheel-slot batch drains in run(). */
    std::uint64_t batchDrains = 0;
    /** Largest single slot batch drained. */
    std::uint64_t maxBatchDrain = 0;

    // ------------------------------- occupancy gauges -------------
    /** Peak live LLSC MSHR entries. */
    std::uint64_t mshrPeakLive = 0;
    /** Peak single-channel queue depth across both DRAM systems. */
    std::uint64_t peakChannelQueue = 0;

    /**
     * The report as one JSON object (the `"profile"` value in
     * `bmcsim --json` / sweep JSONL rows). Fixed field order.
     */
    std::string toJson(bool pretty = false) const;

    /**
     * Ordered (column, value) view with `prof_` prefixed names, for
     * opt-in sweep catalog columns and table output. Order matches
     * toJson().
     */
    std::vector<std::pair<std::string, double>> columns() const;
};

/**
 * Accumulating phase stopwatch. beginPhase/endPhase pairs may repeat
 * (a re-entered phase adds to its total); nesting distinct phases is
 * fine, re-entering an open phase is a caller bug and asserts.
 */
class Profiler
{
  public:
    enum Phase
    {
        kWarmup = 0,
        kRun,
        kCollect,
        kNumPhases,
    };

    void beginPhase(Phase p);
    void endPhase(Phase p);

    /** Accumulated wall seconds for @p p (closed intervals only). */
    double phaseSeconds(Phase p) const;

  private:
    struct PhaseClock
    {
        WallInstant start{};
        double seconds = 0.0;
        bool open = false;
    };

    PhaseClock phases_[kNumPhases];
};

} // namespace bmc

#endif // BMC_COMMON_PROFILER_HH
