/**
 * @file
 * Fundamental scalar types and unit constants shared by every module.
 *
 * The simulator runs on a single global clock domain expressed in CPU
 * cycles of the 3.2 GHz core clock (Table IV of the paper). DRAM-side
 * timing parameters are converted into this domain when a
 * dram::TimingParams preset is constructed.
 */

#ifndef BMC_COMMON_TYPES_HH
#define BMC_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace bmc
{

/** Simulated time, in CPU cycles of the global 3.2 GHz clock. */
using Tick = std::uint64_t;

/** A physical byte address. */
using Addr = std::uint64_t;

/** Sentinel for "no tick scheduled". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Sentinel for an invalid address. */
constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

/** Identifier of a core in a multiprogrammed workload. */
using CoreId = std::uint16_t;

constexpr std::uint64_t kKiB = 1024ULL;
constexpr std::uint64_t kMiB = 1024ULL * kKiB;
constexpr std::uint64_t kGiB = 1024ULL * kMiB;

/** The fine-grain block size used throughout the paper (64 bytes). */
constexpr std::uint32_t kLineBytes = 64;

} // namespace bmc

#endif // BMC_COMMON_TYPES_HH
