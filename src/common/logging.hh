/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  -- an internal invariant was violated (simulator bug);
 *             aborts.
 * fatal()  -- the user asked for something impossible (bad config);
 *             exits with status 1.
 * warn()   -- something is suspicious but the simulation continues.
 * inform() -- plain status output.
 */

#ifndef BMC_COMMON_LOGGING_HH
#define BMC_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace bmc
{

/**
 * Thrown instead of aborting/exiting when throw-on-error mode is
 * enabled (see ScopedThrowErrors). Batch drivers run each simulation
 * under this mode so one bad run is isolated and reported instead of
 * killing the whole sweep.
 */
class SimError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * While alive, panic()/fatal()/bmc_assert raise SimError instead of
 * terminating the process. Nestable and thread-safe (the mode is a
 * process-global counter; simulations themselves never write it).
 */
class ScopedThrowErrors
{
  public:
    ScopedThrowErrors();
    ~ScopedThrowErrors();
    ScopedThrowErrors(const ScopedThrowErrors &) = delete;
    ScopedThrowErrors &operator=(const ScopedThrowErrors &) = delete;
};

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace bmc

#define bmc_panic(...) \
    ::bmc::panicImpl(__FILE__, __LINE__, ::bmc::strfmt(__VA_ARGS__))

#define bmc_fatal(...) \
    ::bmc::fatalImpl(__FILE__, __LINE__, ::bmc::strfmt(__VA_ARGS__))

#define bmc_warn(...) ::bmc::warnImpl(::bmc::strfmt(__VA_ARGS__))

#define bmc_inform(...) ::bmc::informImpl(::bmc::strfmt(__VA_ARGS__))

/** Fatal-if-false check that stays on in release builds. */
#define bmc_assert(cond, ...)                                        \
    do {                                                             \
        if (!(cond)) {                                               \
            ::bmc::panicImpl(__FILE__, __LINE__,                     \
                             std::string("assertion failed: " #cond  \
                                         " -- ") +                   \
                                 ::bmc::strfmt(__VA_ARGS__));        \
        }                                                            \
    } while (0)

#endif // BMC_COMMON_LOGGING_HH
