#include "common/options.hh"

#include <cstdlib>
#include <sstream>

#include "common/logging.hh"

namespace bmc
{

Options::Options(std::string program_desc)
    : programDesc_(std::move(program_desc))
{
    addFlag("help", false, "print this help and exit");
}

Options &
Options::addFlag(const std::string &name, bool def,
                 const std::string &desc)
{
    opts_[name] = {Kind::Flag, desc, def ? "1" : "0", def ? "1" : "0"};
    order_.push_back(name);
    return *this;
}

Options &
Options::addInt(const std::string &name, std::int64_t def,
                const std::string &desc)
{
    opts_[name] = {Kind::Int, desc, std::to_string(def),
                   std::to_string(def)};
    order_.push_back(name);
    return *this;
}

Options &
Options::addUint(const std::string &name, std::uint64_t def,
                 const std::string &desc)
{
    opts_[name] = {Kind::Uint, desc, std::to_string(def),
                   std::to_string(def)};
    order_.push_back(name);
    return *this;
}

Options &
Options::addDouble(const std::string &name, double def,
                   const std::string &desc)
{
    opts_[name] = {Kind::Double, desc, strfmt("%g", def),
                   strfmt("%g", def)};
    order_.push_back(name);
    return *this;
}

Options &
Options::addString(const std::string &name, const std::string &def,
                   const std::string &desc)
{
    opts_[name] = {Kind::String, desc, def, def};
    order_.push_back(name);
    return *this;
}

void
Options::set(const std::string &name, const std::string &value)
{
    auto it = opts_.find(name);
    if (it == opts_.end())
        bmc_fatal("unknown option --%s", name.c_str());
    it->second.value = value;
}

void
Options::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            bmc_fatal("unexpected positional argument '%s'", arg.c_str());
        arg = arg.substr(2);

        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            set(arg.substr(0, eq), arg.substr(eq + 1));
            continue;
        }

        // --no-flag negation.
        if (arg.rfind("no-", 0) == 0) {
            const std::string name = arg.substr(3);
            auto it = opts_.find(name);
            if (it != opts_.end() && it->second.kind == Kind::Flag) {
                it->second.value = "0";
                continue;
            }
        }

        auto it = opts_.find(arg);
        if (it == opts_.end())
            bmc_fatal("unknown option --%s", arg.c_str());
        if (it->second.kind == Kind::Flag) {
            it->second.value = "1";
        } else {
            if (i + 1 >= argc)
                bmc_fatal("option --%s needs a value", arg.c_str());
            it->second.value = argv[++i];
        }
    }

    if (flag("help")) {
        std::fputs(helpText().c_str(), stdout);
        std::exit(0);
    }
}

const Options::Opt &
Options::find(const std::string &name, Kind kind) const
{
    auto it = opts_.find(name);
    if (it == opts_.end())
        bmc_panic("option --%s was never declared", name.c_str());
    if (it->second.kind != kind)
        bmc_panic("option --%s accessed with wrong type", name.c_str());
    return it->second;
}

bool
Options::flag(const std::string &name) const
{
    return find(name, Kind::Flag).value == "1";
}

std::int64_t
Options::getInt(const std::string &name) const
{
    return std::strtoll(find(name, Kind::Int).value.c_str(), nullptr, 0);
}

std::uint64_t
Options::getUint(const std::string &name) const
{
    return std::strtoull(find(name, Kind::Uint).value.c_str(), nullptr,
                         0);
}

double
Options::getDouble(const std::string &name) const
{
    return std::strtod(find(name, Kind::Double).value.c_str(), nullptr);
}

const std::string &
Options::getString(const std::string &name) const
{
    return find(name, Kind::String).value;
}

std::string
Options::helpText() const
{
    std::ostringstream os;
    os << programDesc_ << "\n\noptions:\n";
    for (const auto &name : order_) {
        const auto &opt = opts_.at(name);
        os << "  --" << name;
        if (opt.kind != Kind::Flag)
            os << "=<value>";
        os << "  (default: " << opt.def << ")\n      " << opt.desc
           << "\n";
    }
    return os.str();
}

} // namespace bmc
