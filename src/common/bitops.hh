/**
 * @file
 * Bit-manipulation helpers used by address maps, indexing schemes and
 * predictor hash functions.
 */

#ifndef BMC_COMMON_BITOPS_HH
#define BMC_COMMON_BITOPS_HH

#include <bit>
#include <cassert>
#include <cstdint>

namespace bmc
{

/** Return a mask with the low @p nbits bits set. */
constexpr std::uint64_t
mask(unsigned nbits)
{
    return nbits >= 64 ? ~0ULL : (1ULL << nbits) - 1;
}

/**
 * Extract the bit field [first, last] (inclusive, last >= first,
 * bit 0 = LSB) from @p val.
 */
constexpr std::uint64_t
bits(std::uint64_t val, unsigned last, unsigned first)
{
    return (val >> first) & mask(last - first + 1);
}

/** Insert the low bits of @p field into [first, last] of @p val. */
constexpr std::uint64_t
insertBits(std::uint64_t val, unsigned last, unsigned first,
           std::uint64_t field)
{
    const std::uint64_t m = mask(last - first + 1) << first;
    return (val & ~m) | ((field << first) & m);
}

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); @p v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    assert(v != 0);
    return 63 - std::countl_zero(v);
}

/** log2 of a power of two. */
constexpr unsigned
log2Exact(std::uint64_t v)
{
    assert(isPowerOf2(v));
    return floorLog2(v);
}

/** ceil(a / b) for integers; @p b must be non-zero. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Round @p v up to a multiple of power-of-two @p align. */
constexpr std::uint64_t
roundUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Round @p v down to a multiple of power-of-two @p align. */
constexpr std::uint64_t
roundDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/**
 * Mix the bits of a 64-bit value (SplitMix64 finalizer). Used to
 * build well-distributed indices for predictor and locator tables
 * from tag+set bits.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Fold a 64-bit value into @p nbits via xor-folding. */
constexpr std::uint64_t
foldBits(std::uint64_t v, unsigned nbits)
{
    assert(nbits > 0 && nbits < 64);
    std::uint64_t r = 0;
    while (v != 0) {
        r ^= v & mask(nbits);
        v >>= nbits;
    }
    return r;
}

} // namespace bmc

#endif // BMC_COMMON_BITOPS_HH
