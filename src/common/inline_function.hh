/**
 * @file
 * Small-buffer-optimized, move-only callable wrapper.
 *
 * The event kernel schedules tens of millions of closures per run;
 * std::function costs a heap allocation for any capture list larger
 * than its tiny internal buffer (~16 B on libstdc++) and another
 * allocation + copy when an entry is copied out of the scheduling
 * heap. InplaceFunction stores captures up to @c Capacity bytes
 * inline (sized so the simulator's hot lambdas -- a moved-in
 * completion callback plus a couple of scalars -- fit), falls back to
 * a single heap allocation for larger closures, and is move-only, so
 * a callable is never duplicated on its way through the kernel.
 *
 * Differences from std::function, deliberate:
 *  - no copy construction/assignment (captures move exactly once);
 *  - no target()/target_type() RTTI;
 *  - invoking an empty InplaceFunction is undefined (callers guard
 *    with operator bool, as the simulator always did).
 */

#ifndef BMC_COMMON_INLINE_FUNCTION_HH
#define BMC_COMMON_INLINE_FUNCTION_HH

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace bmc
{

template <typename Signature, std::size_t Capacity = 48>
class InplaceFunction; // undefined; specialized below

template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity>
{
  public:
    InplaceFunction() = default;
    InplaceFunction(std::nullptr_t) {}

    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, InplaceFunction> &&
                  std::is_invocable_r_v<R, D &, Args...>>>
    InplaceFunction(F &&f)
    {
        if constexpr (fitsInline<D>()) {
            ::new (storage()) D(std::forward<F>(f));
            ops_ = &inlineOps<D>;
        } else {
            // The documented large-capture fallback: exactly one
            // owned heap allocation, released by heapOps::destroy.
            // bmclint:allow(no-naked-new)
            ::new (storage()) D *(new D(std::forward<F>(f)));
            ops_ = &heapOps<D>;
        }
    }

    InplaceFunction(InplaceFunction &&other) noexcept
        : ops_(other.ops_)
    {
        if (ops_) {
            ops_->relocate(other.storage(), storage());
            other.ops_ = nullptr;
        }
    }

    InplaceFunction &
    operator=(InplaceFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            ops_ = other.ops_;
            if (ops_) {
                ops_->relocate(other.storage(), storage());
                other.ops_ = nullptr;
            }
        }
        return *this;
    }

    InplaceFunction &
    operator=(std::nullptr_t)
    {
        reset();
        return *this;
    }

    InplaceFunction(const InplaceFunction &) = delete;
    InplaceFunction &operator=(const InplaceFunction &) = delete;

    /**
     * Destroy any current target and construct @p f in place. One
     * move-construction of the callable total, versus two when a
     * caller builds an InplaceFunction argument that is then
     * move-assigned into storage (the hot scheduling path cares).
     */
    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, InplaceFunction> &&
                  std::is_invocable_r_v<R, D &, Args...>>>
    void
    emplace(F &&f)
    {
        reset();
        if constexpr (fitsInline<D>()) {
            ::new (storage()) D(std::forward<F>(f));
            ops_ = &inlineOps<D>;
        } else {
            // Same owned large-capture fallback as the constructor.
            // bmclint:allow(no-naked-new)
            ::new (storage()) D *(new D(std::forward<F>(f)));
            ops_ = &heapOps<D>;
        }
    }

    ~InplaceFunction() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    R
    operator()(Args... args)
    {
        return ops_->invoke(storage(), std::forward<Args>(args)...);
    }

    /** True when a callable of type F is stored without a heap
     *  allocation (exposed so tests can pin the capacity choice). */
    template <typename F>
    static constexpr bool
    fitsInline()
    {
        return sizeof(F) <= Capacity &&
               alignof(F) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<F>;
    }

  private:
    struct Ops
    {
        R (*invoke)(void *, Args &&...);
        /** Move-construct into @p dst from @p src, destroy @p src. */
        void (*relocate)(void *src, void *dst) noexcept;
        void (*destroy)(void *) noexcept;
    };

    void *storage() { return buf_; }
    const void *storage() const { return buf_; }

    void
    reset()
    {
        if (ops_) {
            ops_->destroy(storage());
            ops_ = nullptr;
        }
    }

    template <typename F>
    static inline const Ops inlineOps = {
        [](void *p, Args &&...args) -> R {
            return (*static_cast<F *>(p))(
                std::forward<Args>(args)...);
        },
        [](void *src, void *dst) noexcept {
            ::new (dst) F(std::move(*static_cast<F *>(src)));
            static_cast<F *>(src)->~F();
        },
        [](void *p) noexcept { static_cast<F *>(p)->~F(); },
    };

    template <typename F>
    static inline const Ops heapOps = {
        [](void *p, Args &&...args) -> R {
            return (**static_cast<F **>(p))(
                std::forward<Args>(args)...);
        },
        [](void *src, void *dst) noexcept {
            ::new (dst) F *(*static_cast<F **>(src));
        },
        [](void *p) noexcept { delete *static_cast<F **>(p); },
    };

    alignas(std::max_align_t) unsigned char buf_[Capacity];
    const Ops *ops_ = nullptr;
};

} // namespace bmc

#endif // BMC_COMMON_INLINE_FUNCTION_HH
