/**
 * @file
 * Lightweight statistics package, loosely modelled on gem5's.
 *
 * Components own StatGroup objects; individual statistics register
 * themselves with their group so that a whole simulation can be
 * dumped uniformly -- as "group.stat = value" text (dump()) or as a
 * nested JSON object mirroring the component hierarchy (toJson()).
 * The stat kinds provided are the ones the experiments need:
 *
 *  - Counter          monotonic scalar counter;
 *  - Ratio            quotient of two counters (derived, storage-free);
 *  - Formula          arbitrary derived value computed on demand;
 *  - Average          running mean of observed samples;
 *  - Histogram        fixed, caller-defined bucket count;
 *  - LatencyHistogram log2-bucketed distribution with percentile
 *                     accessors (p50/p95/p99 for latency tails).
 */

#ifndef BMC_COMMON_STATS_HH
#define BMC_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace bmc::stats
{

class StatGroup;

/** Base class for all statistics; registers with a group. */
class StatBase
{
  public:
    StatBase(StatGroup &group, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** One-line textual rendering of the value. */
    virtual std::string render() const = 0;

    /** JSON value (number or object) for StatGroup::toJson(). */
    virtual std::string jsonValue() const;

    /** Reset to the initial value (used between warmup and measure). */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** Monotonic scalar counter. */
class Counter : public StatBase
{
  public:
    using StatBase::StatBase;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t v) { value_ += v; return *this; }

    std::uint64_t value() const { return value_; }
    std::string render() const override;
    std::string jsonValue() const override;
    void reset() override { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Quotient of two counters, e.g. hits / lookups. Derived: it keeps
 * no storage of its own, reads the referenced counters on demand and
 * returns 0 while the denominator is 0. The referenced counters must
 * outlive the ratio (in practice both are siblings in one component).
 */
class Ratio : public StatBase
{
  public:
    Ratio(StatGroup &group, std::string name, std::string desc,
          const Counter &numer, const Counter &denom);

    double value() const;
    std::string render() const override;
    std::string jsonValue() const override;
    void reset() override {} // derived; the counters reset themselves

  private:
    const Counter &numer_;
    const Counter &denom_;
};

/**
 * Arbitrary derived value computed on demand from other statistics
 * (e.g. a hit rate over hits + misses, or a bandwidth from bytes and
 * ticks). The callable must only read state that outlives the
 * formula.
 */
class Formula : public StatBase
{
  public:
    Formula(StatGroup &group, std::string name, std::string desc,
            std::function<double()> fn);

    double value() const { return fn_ ? fn_() : 0.0; }
    std::string render() const override;
    std::string jsonValue() const override;
    void reset() override {} // derived; no storage

  private:
    std::function<double()> fn_;
};

/** Running average of observed samples. */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    void sample(double v) { sum_ += v; ++count_; }

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::string render() const override;
    std::string jsonValue() const override;
    void reset() override { sum_ = 0.0; count_ = 0; }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/** Histogram over fixed, caller-defined bucket count [0, n). */
class Histogram : public StatBase
{
  public:
    Histogram(StatGroup &group, std::string name, std::string desc,
              unsigned num_buckets);

    /** Count one observation of @p bucket (clamped to the last). */
    void sample(unsigned bucket);

    std::uint64_t bucket(unsigned i) const { return buckets_.at(i); }
    std::uint64_t total() const { return total_; }
    unsigned numBuckets() const
    {
        return static_cast<unsigned>(buckets_.size());
    }
    /** Fraction of samples in bucket @p i (0 if empty). */
    double fraction(unsigned i) const;

    std::string render() const override;
    std::string jsonValue() const override;
    void reset() override;

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t total_ = 0;
};

/**
 * Log2-bucketed value histogram with percentile accessors, for
 * latency distributions where the tail matters more than the mean.
 *
 * Bucket i holds values v with bit_width(v) == i, i.e. bucket 0 is
 * exactly v == 0 and bucket i >= 1 covers [2^(i-1), 2^i - 1]; values
 * too large for the configured bucket count clamp into the last
 * bucket. percentile(p) walks the cumulative counts and returns the
 * inclusive upper edge of the first bucket whose cumulative count
 * reaches ceil(p * total) -- a deterministic upper bound on the true
 * p-quantile that is exact for the bucket resolution.
 */
class LatencyHistogram : public StatBase
{
  public:
    LatencyHistogram(StatGroup &group, std::string name,
                     std::string desc, unsigned num_buckets = 40);

    void sample(std::uint64_t v);

    std::uint64_t count() const { return count_; }
    double mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }
    std::uint64_t maxValue() const { return max_; }
    std::uint64_t bucket(unsigned i) const { return buckets_.at(i); }
    unsigned numBuckets() const
    {
        return static_cast<unsigned>(buckets_.size());
    }

    /** Inclusive upper edge of bucket @p i (0, 1, 3, 7, 15, ...). */
    static std::uint64_t bucketUpperEdge(unsigned i);

    /** Upper bound on the @p p quantile (0 when empty); p in (0,1]. */
    std::uint64_t percentile(double p) const;
    std::uint64_t p50() const { return percentile(0.50); }
    std::uint64_t p95() const { return percentile(0.95); }
    std::uint64_t p99() const { return percentile(0.99); }

    std::string render() const override;
    std::string jsonValue() const override;
    void reset() override;

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t max_ = 0;
    double sum_ = 0.0;
};

/**
 * Named collection of statistics belonging to one component.
 * Groups can nest to mirror the component hierarchy.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return name_; }

    void add(StatBase *stat) { stats_.push_back(stat); }
    void addChild(StatGroup *child) { children_.push_back(child); }

    /** Reset every stat in this group and all children. */
    void resetAll();

    /** Render "group.stat = value  # desc" lines recursively. */
    std::string dump(const std::string &prefix = "") const;

    /**
     * Render the group as one JSON object: every registered stat
     * becomes a member (its jsonValue()), every child group a nested
     * object. Deterministic: registration order, fixed formatting.
     *
     * @param pretty indent with two spaces per level when true
     * @param indent current indentation depth (internal)
     */
    std::string toJson(bool pretty = false, unsigned indent = 0) const;

    const std::vector<StatBase *> &statistics() const { return stats_; }
    const std::vector<StatGroup *> &children() const
    {
        return children_;
    }

  private:
    std::string name_;
    std::vector<StatBase *> stats_;
    std::vector<StatGroup *> children_;
};

} // namespace bmc::stats

#endif // BMC_COMMON_STATS_HH
