/**
 * @file
 * Lightweight statistics package, loosely modelled on gem5's.
 *
 * Components own StatGroup objects; individual statistics register
 * themselves with their group so that a whole simulation can be
 * dumped uniformly. Only the handful of stat kinds the experiments
 * need are provided: scalar counters, ratios of counters, averages
 * and fixed-bucket histograms.
 */

#ifndef BMC_COMMON_STATS_HH
#define BMC_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace bmc::stats
{

class StatGroup;

/** Base class for all statistics; registers with a group. */
class StatBase
{
  public:
    StatBase(StatGroup &group, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** One-line textual rendering of the value. */
    virtual std::string render() const = 0;

    /** Reset to the initial value (used between warmup and measure). */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** Monotonic scalar counter. */
class Counter : public StatBase
{
  public:
    using StatBase::StatBase;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t v) { value_ += v; return *this; }

    std::uint64_t value() const { return value_; }
    std::string render() const override;
    void reset() override { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running average of observed samples. */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    void sample(double v) { sum_ += v; ++count_; }

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::string render() const override;
    void reset() override { sum_ = 0.0; count_ = 0; }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/** Histogram over fixed, caller-defined bucket count [0, n). */
class Histogram : public StatBase
{
  public:
    Histogram(StatGroup &group, std::string name, std::string desc,
              unsigned num_buckets);

    /** Count one observation of @p bucket (clamped to the last). */
    void sample(unsigned bucket);

    std::uint64_t bucket(unsigned i) const { return buckets_.at(i); }
    std::uint64_t total() const { return total_; }
    unsigned numBuckets() const
    {
        return static_cast<unsigned>(buckets_.size());
    }
    /** Fraction of samples in bucket @p i (0 if empty). */
    double fraction(unsigned i) const;

    std::string render() const override;
    void reset() override;

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t total_ = 0;
};

/**
 * Named collection of statistics belonging to one component.
 * Groups can nest to mirror the component hierarchy.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return name_; }

    void add(StatBase *stat) { stats_.push_back(stat); }
    void addChild(StatGroup *child) { children_.push_back(child); }

    /** Reset every stat in this group and all children. */
    void resetAll();

    /** Render "group.stat = value  # desc" lines recursively. */
    std::string dump(const std::string &prefix = "") const;

    const std::vector<StatBase *> &statistics() const { return stats_; }

  private:
    std::string name_;
    std::vector<StatBase *> stats_;
    std::vector<StatGroup *> children_;
};

} // namespace bmc::stats

#endif // BMC_COMMON_STATS_HH
