/**
 * @file
 * Domain scenario 3: tuning the Bi-Modal knobs for a deployment.
 *
 * Exercises the public configuration surface: sweeps the way-locator
 * size (K), the size-predictor threshold (T) and the global
 * adaptation weight (W), reporting the metrics each knob trades off.
 * This is the experiment a team productizing the design would run
 * before freezing RTL parameters.
 *
 *   ./build/examples/locator_tuning [--workload=Q7]
 */

#include <cstdio>

#include "common/options.hh"
#include "common/table.hh"
#include "dramcache/bimodal/bimodal_cache.hh"
#include "sim/functional.hh"
#include "sim/system.hh"
#include "trace/workload.hh"

namespace
{

using namespace bmc;

struct Sample
{
    double hitRate;
    double locator;
    double smallFrac;
    double wastedMb;
};

Sample
runOnce(const trace::WorkloadSpec &wl, sim::MachineConfig cfg,
        std::uint64_t records)
{
    stats::StatGroup sg("tune");
    auto org = sim::buildOrg(cfg, sg);
    auto programs = sim::makeWorkloadPrograms(wl, cfg);
    sim::runFunctional(*org, programs, cfg, records, sg);
    const auto *bm =
        dynamic_cast<const dramcache::BiModalCache *>(org.get());
    Sample s{};
    s.hitRate = org->stats().hitRate();
    s.locator = bm && bm->wayLocator() ? bm->wayLocator()->hitRate()
                                       : 0.0;
    s.smallFrac = bm ? bm->smallAccessFraction() : 0.0;
    s.wastedMb =
        static_cast<double>(org->stats().wastedFetchBytes.value()) /
        1e6;
    return s;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opts("Tune way-locator size, threshold T and weight W");
    opts.addString("workload", "Q7", "quad-core workload");
    opts.addUint("records", 300'000, "trace records per core");
    opts.addUint("seed", 1, "experiment seed");
    opts.parse(argc, argv);

    const auto &wl = trace::findWorkload(opts.getString("workload"));
    const auto records = opts.getUint("records");

    std::printf("== way locator size (K) ==\n");
    Table tk({"K", "entries", "locator hit%", "cache hit%"});
    for (unsigned k : {8u, 10u, 12u, 14u}) {
        sim::MachineConfig cfg = sim::MachineConfig::preset(4);
        cfg.scheme = sim::Scheme::BiModal;
        cfg.locatorIndexBits = k;
        cfg.seed = opts.getUint("seed");
        const Sample s = runOnce(wl, cfg, records);
        tk.row()
            .cell(static_cast<std::uint64_t>(k))
            .cell(static_cast<std::uint64_t>(2ULL << k))
            .pct(s.locator * 100.0)
            .pct(s.hitRate * 100.0);
    }
    tk.print();

    std::printf("\n== size-predictor threshold (T) ==\n");
    Table tt({"T", "small-access%", "wasted MB", "cache hit%"});
    for (unsigned t : {2u, 4u, 5u, 6u, 8u}) {
        sim::MachineConfig cfg = sim::MachineConfig::preset(4);
        cfg.scheme = sim::Scheme::BiModal;
        cfg.predictorThreshold = t;
        cfg.seed = opts.getUint("seed");
        const Sample s = runOnce(wl, cfg, records);
        tt.row()
            .cell(static_cast<std::uint64_t>(t))
            .pct(s.smallFrac * 100.0)
            .cell(s.wastedMb, 2)
            .pct(s.hitRate * 100.0);
    }
    tt.print();
    std::printf("(higher T demands more utilization before filling "
                "big: less waste, fewer spatial hits)\n");

    std::printf("\n== global adaptation weight (W) ==\n");
    Table tw({"W", "small-access%", "wasted MB", "cache hit%"});
    for (double w : {0.25, 0.5, 0.75, 1.0, 1.5}) {
        sim::MachineConfig cfg = sim::MachineConfig::preset(4);
        cfg.scheme = sim::Scheme::BiModal;
        cfg.adaptWeight = w;
        cfg.seed = opts.getUint("seed");
        const Sample s = runOnce(wl, cfg, records);
        tw.row()
            .cell(w, 2)
            .pct(s.smallFrac * 100.0)
            .cell(s.wastedMb, 2)
            .pct(s.hitRate * 100.0);
    }
    tw.print();
    std::printf("(W < 1 biases toward big blocks; the paper uses "
                "0.75)\n");
    return 0;
}
