/**
 * @file
 * Domain scenario 1: an architect comparing DRAM cache organizations
 * for a target workload portfolio.
 *
 * Runs every implemented organization over a set of multiprogrammed
 * mixes and reports the metrics an architecture study would table:
 * hit rate, average LLSC miss penalty, off-chip traffic and the
 * SRAM budget each scheme spends on tags/predictors.
 *
 *   ./build/examples/workload_study [--workloads=Q1,Q3,...]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/options.hh"
#include "common/table.hh"
#include "sim/system.hh"
#include "trace/workload.hh"

int
main(int argc, char **argv)
{
    using namespace bmc;

    Options opts("Compare all DRAM cache organizations on a "
                 "workload portfolio");
    opts.addString("workloads", "Q1,Q5,Q7",
                   "comma-separated quad-core workloads");
    opts.addUint("instrs", 1'000'000, "instructions per core");
    opts.addUint("seed", 1, "experiment seed");
    opts.parse(argc, argv);

    std::vector<std::string> names;
    {
        const std::string &arg = opts.getString("workloads");
        size_t pos = 0;
        while (pos != std::string::npos) {
            const size_t comma = arg.find(',', pos);
            names.push_back(arg.substr(pos, comma - pos));
            pos = comma == std::string::npos ? comma : comma + 1;
        }
    }

    const std::vector<std::pair<const char *, sim::Scheme>> schemes = {
        {"alloy", sim::Scheme::Alloy},
        {"loh_hill", sim::Scheme::LohHill},
        {"atcache", sim::Scheme::ATCache},
        {"footprint", sim::Scheme::Footprint},
        {"bimodal", sim::Scheme::BiModal},
    };

    for (const auto &name : names) {
        const auto &wl = trace::findWorkload(name);
        std::printf("=== workload %s (%s intensity) ===\n",
                    wl.name.c_str(),
                    wl.highIntensity ? "high" : "moderate/low");
        Table table({"scheme", "hit%", "avg penalty", "offchip MB",
                     "writeback MB", "SRAM budget KB"});
        for (const auto &[label, scheme] : schemes) {
            sim::MachineConfig cfg = sim::MachineConfig::preset(4);
            cfg.scheme = scheme;
            cfg.instrPerCore = opts.getUint("instrs");
            cfg.warmupInstrPerCore = opts.getUint("instrs");
            cfg.seed = opts.getUint("seed");
            sim::System system(cfg, wl.programs);
            const auto rs = system.run();
            table.row()
                .cell(label)
                .pct(rs.cacheHitRate * 100.0)
                .cell(rs.avgAccessLatency, 1)
                .cell(static_cast<double>(rs.offchipFetchBytes) / 1e6,
                      2)
                .cell(static_cast<double>(rs.writebackBytes) / 1e6, 2)
                .cell(static_cast<double>(
                          system.org().sramBytes()) /
                          1024.0,
                      1);
        }
        table.print();
        std::printf("\n");
    }
    return 0;
}
