/**
 * @file
 * Quickstart: simulate one quad-core workload on the AlloyCache
 * baseline and on the Bi-Modal Cache, and compare the headline
 * metrics (DRAM cache hit rate, average LLSC miss penalty, off-chip
 * traffic, way-locator hit rate).
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [--workload=Q5] [--instrs=1000000]
 */

#include <cstdio>

#include "common/logging.hh"
#include "common/options.hh"
#include "common/table.hh"
#include "sim/system.hh"
#include "trace/workload.hh"

int
main(int argc, char **argv)
{
    using namespace bmc;

    Options opts("Quickstart: Bi-Modal Cache vs AlloyCache on one "
                 "quad-core workload");
    opts.addString("workload", "Q5", "workload name (Q1..Q12)");
    opts.addUint("instrs", 1'000'000, "instructions per core");
    opts.addUint("seed", 1, "experiment seed");
    opts.parse(argc, argv);

    const auto &workload =
        trace::findWorkload(opts.getString("workload"));

    Table table({"scheme", "cache hit%", "avg penalty", "hit lat",
                 "miss lat", "tag rd", "mem rd", "offchip MB", "waylocator hit%",
                 "small-access%"});

    for (const sim::Scheme scheme :
         {sim::Scheme::Alloy, sim::Scheme::BiModal}) {
        sim::MachineConfig cfg = sim::MachineConfig::preset(4);
        cfg.scheme = scheme;
        cfg.instrPerCore = opts.getUint("instrs");
        cfg.seed = opts.getUint("seed");

        sim::System system(cfg, workload.programs);
        const sim::RunStats rs = system.run();

        table.row()
            .cell(sim::schemeName(scheme))
            .pct(rs.cacheHitRate * 100.0)
            .cell(rs.avgAccessLatency, 1)
            .cell(rs.avgHitLatency, 1)
            .cell(rs.avgMissLatency, 1)
            .cell(rs.avgTagReadTicks, 1)
            .cell(rs.avgMemDemandTicks, 1)
            .cell(static_cast<double>(rs.offchipFetchBytes) / 1e6, 1)
            .cell(rs.locatorHitRate >= 0
                      ? strfmt("%.1f%%", rs.locatorHitRate * 100.0)
                      : std::string("-"))
            .cell(rs.smallAccessFraction >= 0
                      ? strfmt("%.1f%%",
                               rs.smallAccessFraction * 100.0)
                      : std::string("-"));
    }

    std::printf("workload %s (%s intensity)\n\n",
                workload.name.c_str(),
                workload.highIntensity ? "high" : "moderate/low");
    table.print();
    return 0;
}
