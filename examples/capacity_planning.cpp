/**
 * @file
 * Domain scenario 2: capacity planning for a stacked-DRAM part.
 *
 * A product team choosing how much stacked DRAM to provision sweeps
 * the cache capacity for a fixed workload and watches hit rate,
 * latency and off-chip bandwidth saturate. The Bi-Modal Cache's
 * SRAM budget (way locator + predictor) is also reported per point,
 * showing that -- unlike tags-in-SRAM designs -- its SRAM cost grows
 * only logarithmically with capacity (Table III's scaling argument).
 *
 *   ./build/examples/capacity_planning [--workload=Q5]
 */

#include <cstdio>

#include "common/options.hh"
#include "common/table.hh"
#include "sim/system.hh"
#include "trace/workload.hh"

int
main(int argc, char **argv)
{
    using namespace bmc;

    Options opts("Sweep DRAM cache capacity for one workload");
    opts.addString("workload", "Q5", "quad-core workload");
    opts.addUint("instrs", 800'000, "instructions per core");
    opts.addUint("seed", 1, "experiment seed");
    opts.parse(argc, argv);

    const auto &wl = trace::findWorkload(opts.getString("workload"));

    std::printf("capacity sweep, workload %s, Bi-Modal Cache\n"
                "(workload footprint pinned to the 8 MiB reference point)\n\n",
                wl.name.c_str());

    Table table({"capacity", "hit%", "avg penalty", "offchip MB",
                 "locator hit%", "bimodal SRAM KB"});

    for (const std::uint64_t mib : {2ULL, 4ULL, 8ULL, 16ULL, 32ULL}) {
        sim::MachineConfig cfg = sim::MachineConfig::preset(4);
        cfg.scheme = sim::Scheme::BiModal;
        cfg.dramCacheBytes = mib * kMiB;
        // Pin the workload footprint to the 8 MiB reference point so
        // the sweep varies ONLY the provisioned capacity.
        cfg.footprintRefBytes = 8 * kMiB;
        cfg.instrPerCore = opts.getUint("instrs");
        cfg.warmupInstrPerCore = opts.getUint("instrs");
        cfg.seed = opts.getUint("seed");
        sim::System system(cfg, wl.programs);
        const auto rs = system.run();
        table.row()
            .cell(std::to_string(mib) + " MiB")
            .pct(rs.cacheHitRate * 100.0)
            .cell(rs.avgAccessLatency, 1)
            .cell(static_cast<double>(rs.offchipFetchBytes) / 1e6, 2)
            .pct(rs.locatorHitRate * 100.0)
            .cell(static_cast<double>(system.org().sramBytes()) /
                      1024.0,
                  1);
    }
    table.print();

    std::printf("\nNote: hit rate climbs with capacity while the "
                "SRAM budget stays nearly flat -- the property that "
                "lets metadata live in DRAM as caches grow.\n");
    return 0;
}
